package sa

import (
	"testing"

	"qcc/internal/qir"
)

func TestIntervalArith(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", Range(1, 3).Add(Range(10, 20)), Range(11, 23)},
		{"add-overflow", Range(1, PosInf-1).Add(Range(2, 2)), Top()},
		{"sub", Range(5, 10).Sub(Range(1, 2)), Range(3, 9)},
		{"sub-overflow", Range(NegInf+1, 0).Sub(Range(2, 2)), Top()},
		{"mul", Range(-2, 3).Mul(Range(4, 5)), Range(-10, 15)},
		{"mul-overflow", Range(0, PosInf/2+1).Mul(Range(2, 2)), Top()},
		{"neg", Range(-3, 7).Neg(), Range(-7, 3)},
		{"neg-min", Range(NegInf, 0).Neg(), Top()},
		{"meet", Range(0, 10).Meet(Range(5, 20)), Range(5, 10)},
		{"union", Range(0, 1).Union(Range(5, 6)), Range(0, 6)},
		{"addsat", Range(1, PosInf-1).AddSat(Range(2, 2)), Range(3, PosInf)},
		{"mulsat", Range(0, PosInf/2+1).MulSat(Range(2, 2)), Range(0, PosInf)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
	if !Range(5, 4).Empty() {
		t.Error("inverted interval should be empty")
	}
}

func TestRefineByCmp(t *testing.T) {
	// x slt y with y in [0, 100]: x.Hi clamps to 99.
	nx, ny := refineByCmp(qir.CmpSLT, Top(), Range(0, 100))
	if nx.Hi != 99 {
		t.Errorf("slt: x.Hi = %d, want 99", nx.Hi)
	}
	if ny != Range(0, 100) {
		t.Errorf("slt: y changed unexpectedly to %s", ny)
	}
	// x ult y with y in [0, 64]: pins x to [0, 63] even with unknown sign.
	nx, _ = refineByCmp(qir.CmpULT, Top(), Range(0, 64))
	if nx != Range(0, 63) {
		t.Errorf("ult: x = %s, want [0,63]", nx)
	}
	// x uge y must not refine when y's sign is unknown.
	nx, _ = refineByCmp(qir.CmpUGE, Top(), Top())
	if !nx.IsTop() {
		t.Errorf("uge with unknown ranges refined to %s", nx)
	}
}

// buildMorselFunc mirrors the codegen morsel-loop shape:
//
//	func(state ptr, lo i64, hi i64):
//	entry: br head
//	head:  i = phi [entry: lo] [latch: i+1]; if i < hi goto body else exit
//	body:  x = load (colBase + i*8); acc = load state+16; store state+16, acc+x
//	latch: i2 = i+1; br head
//	exit:  ret
func buildMorselFunc(m *qir.Module, colBase int64) (*qir.Func, qir.Value, []qir.BlockID) {
	b := qir.NewFunc(m, "morsel", qir.Void, qir.Ptr, qir.I64, qir.I64)
	entry := b.Block()
	head := b.NewBlock()
	body := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()

	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(qir.I64, entry, b.Param(1))
	cond := b.ICmp(qir.CmpSLT, i, b.Param(2))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	base := b.ConstInt(qir.Ptr, colBase)
	addr := b.GEP(base, 0, i, 8)
	x := b.Load(qir.I64, addr)
	saddr := b.GEP(b.Param(0), 16, qir.NoValue, 0)
	acc := b.Load(qir.I64, saddr)
	sum := b.Bin(qir.OpAdd, acc, x)
	b.Store(saddr, sum)
	b.Br(latch)

	b.SetBlock(latch)
	i2 := b.Bin(qir.OpAdd, i, b.ConstInt(qir.I64, 1))
	b.AddPhiArg(i, latch, i2)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(qir.NoValue)
	return b.Func(), i, []qir.BlockID{entry, head, body, latch, exit}
}

func TestMorselLoopProof(t *testing.T) {
	const colBase = 1 << 20
	const rows = 1000
	m := qir.NewModule("t")
	f, i, blocks := buildMorselFunc(m, colBase)
	body := blocks[2]

	facts := NewFacts()
	facts.ParamRegion = []int64{64}
	facts.ParamRange = []Interval{{}, {0, rows}, {0, rows}}
	facts.Regions = []Region{{Base: colBase, Size: rows * 8}}
	a := Analyze(f, facts)

	// The constraint-aware second round recovers the exact trip range of
	// the induction phi; the branch condition sharpens it further to
	// [0, rows-1] inside the body.
	if g := a.Range(i); g != Range(0, rows) {
		t.Errorf("global phi range = %s, want [0,%d]", g, rows)
	}
	if r := a.RangeAt(body, i); r != Range(0, rows-1) {
		t.Errorf("refined phi range in body = %s, want [0,%d]", r, rows-1)
	}

	accs := a.Accesses()
	if len(accs) != 3 {
		t.Fatalf("got %d accesses, want 3", len(accs))
	}
	for _, acc := range accs {
		if !acc.Safe {
			t.Errorf("access %%%d (store=%v) not proven safe", acc.V, acc.Store)
		}
	}
	// The column load is proven against the absolute region, the state
	// access against the anchored parameter region.
	if accs[0].Reason != "absolute" {
		t.Errorf("column load reason = %q, want absolute", accs[0].Reason)
	}
	if accs[1].Reason != "region" {
		t.Errorf("state load reason = %q, want region", accs[1].Reason)
	}
	if a.MaxLive <= 0 {
		t.Error("MaxLive not computed")
	}
	if len(a.Lint()) != 0 {
		t.Errorf("unexpected lint findings: %v", a.Lint())
	}
}

func TestMorselLoopOffByOne(t *testing.T) {
	// Identical loop, but the region is one element too small: nothing may
	// be proven for the column access.
	const colBase = 1 << 20
	m := qir.NewModule("t")
	f, _, _ := buildMorselFunc(m, colBase)
	facts := NewFacts()
	facts.ParamRegion = []int64{64}
	facts.ParamRange = []Interval{{}, {0, 1000}, {0, 1000}}
	facts.Regions = []Region{{Base: colBase, Size: 1000*8 - 8}}
	a := Analyze(f, facts)
	accs := a.Accesses()
	if accs[0].Safe {
		t.Errorf("column load proven safe against a too-small region (reason %q)", accs[0].Reason)
	}
}

func TestUnknownIndexNotEliminated(t *testing.T) {
	// A load indexed by an unconstrained parameter must stay checked.
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr, qir.I64)
	base := b.ConstInt(qir.Ptr, 1<<20)
	addr := b.GEP(base, 0, b.Param(1), 8)
	x := b.Load(qir.I64, addr)
	b.Ret(x)
	facts := NewFacts()
	facts.Regions = []Region{{Base: 1 << 20, Size: 8000}}
	a := Analyze(b.Func(), facts)
	accs := a.Accesses()
	if len(accs) != 1 || accs[0].Safe {
		t.Errorf("unbounded-index load must not be eliminated: %+v", accs)
	}
}

func TestBranchRefinement(t *testing.T) {
	// if n < 10 { then } else { else }
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.Void, qir.I64)
	n := b.Param(0)
	then := b.NewBlock()
	els := b.NewBlock()
	cond := b.ICmp(qir.CmpSLT, n, b.ConstInt(qir.I64, 10))
	b.CondBr(cond, then, els)
	b.SetBlock(then)
	b.Ret(qir.NoValue)
	b.SetBlock(els)
	b.Ret(qir.NoValue)
	a := Analyze(b.Func(), nil)
	if r := a.RangeAt(then, n); r.Hi != 9 {
		t.Errorf("then-range = %s, want Hi 9", r)
	}
	if r := a.RangeAt(els, n); r.Lo != 10 {
		t.Errorf("else-range = %s, want Lo 10", r)
	}
	if r := a.RangeAt(then, cond); r != Point(1) {
		t.Errorf("cond in then = %s, want [1,1]", r)
	}
	if r := a.RangeAt(els, cond); r != Point(0) {
		t.Errorf("cond in else = %s, want [0,0]", r)
	}
}

func TestRedundantAccessTier(t *testing.T) {
	// Two loads of state+24 in blocks where the first dominates the second:
	// the second needs no check even though the state size is unknown.
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr)
	a1 := b.GEP(b.Param(0), 24, qir.NoValue, 0)
	b.Load(qir.I64, a1)
	next := b.NewBlock()
	b.Br(next)
	b.SetBlock(next)
	a2 := b.GEP(b.Param(0), 24, qir.NoValue, 0)
	x := b.Load(qir.I64, a2)
	b.Ret(x)

	facts := NewFacts()
	facts.ParamRegion = []int64{8} // too small to prove offset 24 directly
	a := Analyze(b.Func(), facts)
	accs := a.Accesses()
	if len(accs) != 2 {
		t.Fatalf("want 2 accesses, got %d", len(accs))
	}
	if accs[0].Safe {
		t.Error("first access must stay checked")
	}
	if !accs[1].Safe || accs[1].Reason != "redundant" {
		t.Errorf("second access should be redundant, got %+v", accs[1])
	}
}

func TestLoopVariantAddressNotRedundant(t *testing.T) {
	// The address is a loop-carried phi: the same SSA value denotes a
	// different runtime address per iteration, so a dominating access in a
	// previous iteration proves nothing.
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.Void, qir.Ptr)
	entry := b.Block()
	head := b.NewBlock()
	bodyA := b.NewBlock()
	bodyB := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	p := b.Phi(qir.Ptr, entry, b.Param(0))
	b.Br(bodyA)
	b.SetBlock(bodyA)
	b.Load(qir.I64, p)
	b.Br(bodyB)
	b.SetBlock(bodyB)
	b.Load(qir.I64, p)
	p2 := b.GEP(p, 8, qir.NoValue, 0)
	b.AddPhiArg(p, bodyB, p2)
	cond := b.ICmp(qir.CmpEQ, b.ConstInt(qir.I64, 0), b.ConstInt(qir.I64, 0))
	b.CondBr(cond, head, exit)
	b.SetBlock(exit)
	b.Ret(qir.NoValue)

	a := Analyze(b.Func(), nil)
	accs := a.Accesses()
	if len(accs) != 2 {
		t.Fatalf("want 2 accesses, got %d", len(accs))
	}
	// Same block would be fine, but these are cross-block with a variant
	// address: both must stay checked.
	for _, acc := range accs {
		if acc.Safe {
			t.Errorf("loop-variant access %%%d wrongly eliminated (%s)", acc.V, acc.Reason)
		}
	}
}

func TestSameBlockSameAddrRedundant(t *testing.T) {
	// Within one block the same SSA address has one runtime value, so the
	// second access is covered by the first.
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr)
	p := b.Load(qir.Ptr, b.GEP(b.Param(0), 0, qir.NoValue, 0))
	b.Load(qir.I64, p)
	x := b.Load(qir.I64, p)
	b.Ret(x)
	facts := NewFacts()
	facts.ParamRegion = []int64{8}
	a := Analyze(b.Func(), facts)
	accs := a.Accesses()
	if len(accs) != 3 {
		t.Fatalf("want 3 accesses, got %d", len(accs))
	}
	if !accs[0].Safe {
		t.Error("pointer slot load should be region-proven")
	}
	if accs[1].Safe {
		t.Error("first indirect load must stay checked")
	}
	if !accs[2].Safe || accs[2].Reason != "redundant" {
		t.Errorf("second indirect load should be redundant, got %+v", accs[2])
	}
}

func TestLintAlwaysTrapAndContradiction(t *testing.T) {
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.I64)
	// Null deref.
	b.Load(qir.I64, b.Null())
	// Contradictory branch: param pinned to [0,10] but compared with 20.
	then := b.NewBlock()
	els := b.NewBlock()
	cond := b.ICmp(qir.CmpSLT, b.Param(0), b.ConstInt(qir.I64, 20))
	b.CondBr(cond, then, els)
	b.SetBlock(then)
	b.Ret(b.ConstInt(qir.I64, 0))
	b.SetBlock(els)
	// Division by constant zero in the (dead) arm.
	q := b.Bin(qir.OpSDiv, b.Param(0), b.ConstInt(qir.I64, 0))
	b.Ret(q)

	facts := NewFacts()
	facts.ParamRange = []Interval{{0, 10}}
	fs := Analyze(b.Func(), facts).Lint()
	var kinds []FindingKind
	for _, f := range fs {
		kinds = append(kinds, f.Kind)
	}
	want := map[FindingKind]bool{FindAlwaysTrap: false, FindContradiction: false}
	trapCount := 0
	for _, k := range kinds {
		if k == FindAlwaysTrap {
			trapCount++
		}
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing %s finding in %v", k, fs)
		}
	}
	if trapCount != 2 {
		t.Errorf("want 2 always-trap findings (null deref + div zero), got %d: %v", trapCount, fs)
	}
}

func TestLintDeadStoreAndUnreachable(t *testing.T) {
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.Void, qir.Ptr)
	s := b.GEP(b.Param(0), 8, qir.NoValue, 0)
	b.Store(s, b.ConstInt(qir.I64, 1))
	b.Store(s, b.ConstInt(qir.I64, 2)) // kills the first store
	b.Ret(qir.NoValue)
	dead := b.NewBlock()
	b.SetBlock(dead)
	b.Ret(qir.NoValue)

	facts := NewFacts()
	facts.ParamRegion = []int64{64}
	fs := Analyze(b.Func(), facts).Lint()
	var sawDead, sawUnreach bool
	for _, f := range fs {
		switch f.Kind {
		case FindDeadStore:
			sawDead = true
		case FindUnreachable:
			sawUnreach = true
		}
	}
	if !sawDead || !sawUnreach {
		t.Errorf("want dead-store and unreachable-block findings, got %v", fs)
	}
}

func TestLintNoDeadStoreAcrossLoad(t *testing.T) {
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr)
	s := b.GEP(b.Param(0), 8, qir.NoValue, 0)
	b.Store(s, b.ConstInt(qir.I64, 1))
	x := b.Load(qir.I64, s) // observes the first store
	b.Store(s, b.ConstInt(qir.I64, 2))
	b.Ret(x)
	facts := NewFacts()
	facts.ParamRegion = []int64{64}
	for _, f := range Analyze(b.Func(), facts).Lint() {
		if f.Kind == FindDeadStore {
			t.Errorf("store observed by a load flagged dead: %v", f)
		}
	}
}

func TestWideningTerminates(t *testing.T) {
	// Unbounded count-down loop: i starts unknown and decreases; both
	// directions must widen without hanging.
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.Void, qir.I64)
	entry := b.Block()
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(qir.I64, entry, b.Param(0))
	cond := b.ICmp(qir.CmpNE, i, b.ConstInt(qir.I64, 0))
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	i2 := b.Bin(qir.OpSub, i, b.ConstInt(qir.I64, 3))
	b.AddPhiArg(i, body, i2)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(qir.NoValue)
	a := Analyze(b.Func(), nil)
	if !a.Range(i).IsTop() {
		t.Errorf("phi range = %s, want top after widening", a.Range(i))
	}
}

func TestMaxLiveValues(t *testing.T) {
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "f", qir.I64, qir.I64, qir.I64)
	x := b.Bin(qir.OpAdd, b.Param(0), b.Param(1))
	y := b.Bin(qir.OpMul, b.Param(0), b.Param(1))
	z := b.Bin(qir.OpAdd, x, y)
	b.Ret(z)
	f := b.Func()
	got := f.MaxLiveValues(f.LivenessAnalysis())
	// After x is defined: params and x are live (y still needs both
	// params) -> at least 3 simultaneously live values.
	if got < 3 {
		t.Errorf("MaxLiveValues = %d, want >= 3", got)
	}
}

// buildChainWalk replicates the hash-table probe shape codegen emits: a
// lookup call yields a maybe-null entry pointer, a phi walks the chain via
// the next pointer at entry-16, and the loop body (guarded by a null check)
// reads the stored hash at entry-8 and a payload slot.
func buildChainWalk(m *qir.Module, width int64) (*qir.Func, map[string]qir.Value, []qir.BlockID) {
	b := qir.NewFunc(m, "chain", qir.Void, qir.Ptr, qir.I64)
	entry := b.Block()
	first := b.Call(qir.Ptr, "ht_lookup", b.Param(0), b.Param(1))

	head := b.NewBlock()
	body := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()
	b.Br(head)

	b.SetBlock(head)
	p := b.Phi(qir.Ptr, entry, first)
	null := b.Null()
	done := b.ICmp(qir.CmpEQ, p, null)
	b.CondBr(done, exit, body)

	b.SetBlock(body)
	ehash := b.Load(qir.I64, b.GEP(p, -8, qir.NoValue, 0))
	payload := b.Load(qir.I64, b.GEP(p, 8, qir.NoValue, 0))
	use := b.Bin(qir.OpAdd, ehash, payload)
	_ = use
	b.Br(latch)

	b.SetBlock(latch)
	nxt := b.Load(qir.Ptr, b.GEP(p, -16, qir.NoValue, 0))
	b.AddPhiArg(p, latch, nxt)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(qir.NoValue)
	return b.Func(), map[string]qir.Value{"first": first, "p": p, "nxt": nxt}, []qir.BlockID{entry, head, body, latch, exit}
}

func TestPtrFactChainWalk(t *testing.T) {
	m := qir.NewModule("t")
	f, vals, blocks := buildChainWalk(m, 32)
	body, latch := blocks[2], blocks[3]

	facts := NewFacts()
	facts.ValFacts = map[qir.Value]PtrFact{
		vals["first"]: {Pre: 16, Post: 32, MaybeNull: true},
		vals["p"]:     {Pre: 16, Post: 32, MaybeNull: true},
		vals["nxt"]:   {Pre: 16, Post: 32, MaybeNull: true},
	}
	a := Analyze(f, facts)

	if !a.nonNullAt(body, vals["p"]) {
		t.Fatalf("phi not proven non-null in null-guarded body")
	}
	if a.nonNullAt(blocks[1], vals["p"]) {
		t.Fatalf("phi wrongly non-null at loop head (pre-check)")
	}
	var safe, unsafe int
	for _, acc := range a.Accesses() {
		if acc.Safe {
			if acc.Reason != "region" {
				t.Fatalf("access %%%d: reason %q, want region", acc.V, acc.Reason)
			}
			safe++
		} else {
			unsafe++
		}
	}
	// All three accesses sit in null-guarded blocks (body and latch are
	// only reachable through the p != null arm).
	if safe != 3 || unsafe != 0 {
		t.Fatalf("safe=%d unsafe=%d, want 3/0", safe, unsafe)
	}
	if !a.Dom.Dominates(body, latch) {
		t.Fatalf("test premise: body should dominate latch")
	}
	if len(a.Lint()) != 0 {
		t.Fatalf("unexpected lint findings: %v", a.Lint())
	}
}

func TestPtrFactNullNotProven(t *testing.T) {
	m := qir.NewModule("t")
	b := qir.NewFunc(m, "noguard", qir.Void, qir.I64)
	p := b.Call(qir.Ptr, "ht_lookup", b.Param(0))
	v := b.Load(qir.I64, b.GEP(p, 0, qir.NoValue, 0))
	_ = v
	b.Ret(qir.NoValue)
	f := b.Func()

	facts := NewFacts()
	facts.ValFacts = map[qir.Value]PtrFact{p: {Pre: 0, Post: 8, MaybeNull: true}}
	a := Analyze(f, facts)
	for _, acc := range a.Accesses() {
		if acc.Safe {
			t.Fatalf("maybe-null deref without guard must stay checked")
		}
	}

	// The same shape with a non-null contract is proven outright.
	m2 := qir.NewModule("t2")
	b2 := qir.NewFunc(m2, "insert", qir.Void, qir.I64)
	p2 := b2.Call(qir.Ptr, "ht_insert", b2.Param(0))
	b2.Store(b2.GEP(p2, 0, qir.NoValue, 0), b2.Param(0))
	b2.Ret(qir.NoValue)
	facts2 := NewFacts()
	facts2.ValFacts = map[qir.Value]PtrFact{p2: {Pre: 0, Post: 8}}
	a2 := Analyze(b2.Func(), facts2)
	accs := a2.Accesses()
	if len(accs) != 1 || !accs[0].Safe || accs[0].Reason != "region" {
		t.Fatalf("non-null fact store not proven: %+v", accs)
	}

	// Out-of-contract offset must stay checked even with the fact.
	m3 := qir.NewModule("t3")
	b3 := qir.NewFunc(m3, "oob", qir.Void, qir.I64)
	p3 := b3.Call(qir.Ptr, "ht_insert", b3.Param(0))
	b3.Store(b3.GEP(p3, 4, qir.NoValue, 0), b3.Param(0))
	b3.Ret(qir.NoValue)
	facts3 := NewFacts()
	facts3.ValFacts = map[qir.Value]PtrFact{p3: {Pre: 0, Post: 8}}
	a3 := Analyze(b3.Func(), facts3)
	if accs := a3.Accesses(); accs[0].Safe {
		t.Fatalf("8-byte store at offset 4 of an 8-byte region marked safe")
	}
}

func TestPtrFactAnchorNotCrossBlockRedundant(t *testing.T) {
	// Two same-offset loads through a loop-carried fact pointer in
	// different blocks must not cover each other: the anchor takes a new
	// value every iteration.
	m := qir.NewModule("t")
	f, vals, _ := buildChainWalk(m, 32)
	facts := NewFacts()
	// No Post large enough to prove anything; only redundancy could fire.
	facts.ValFacts = map[qir.Value]PtrFact{
		vals["first"]: {Pre: 0, Post: 1, MaybeNull: true},
		vals["p"]:     {Pre: 0, Post: 1, MaybeNull: true},
		vals["nxt"]:   {Pre: 0, Post: 1, MaybeNull: true},
	}
	a := Analyze(f, facts)
	for _, acc := range a.Accesses() {
		if acc.Safe {
			t.Fatalf("access %%%d wrongly proven (%s)", acc.V, acc.Reason)
		}
	}
}
