package sa

import "qcc/internal/qir"

// Region is an absolute address range [Base, Base+Size) known valid for the
// whole function activation — e.g. a catalog column baked into the module as
// a constant base address.
type Region struct {
	Base, Size int64
}

// PtrFact declares a runtime contract about one SSA pointer value: when it
// is non-null it points into a region with Pre valid bytes before it and
// Post valid bytes from it on ([v-Pre, v+Post) is accessible). MaybeNull
// says whether the value can also be null — accesses through a maybe-null
// anchor are only proven where a dominating branch established non-null.
type PtrFact struct {
	Pre, Post int64
	MaybeNull bool
}

// Facts is the environment the analysis assumes about a function's inputs.
// All entries are optional; missing facts only lose precision, never
// soundness.
type Facts struct {
	// Regions are absolute valid memory ranges (catalog columns).
	Regions []Region
	// ParamRegion[i] > 0 declares that pointer parameter i points at a
	// valid region of at least that many bytes (e.g. the state block).
	ParamRegion []int64
	// ParamRange[i] constrains integer parameter i (e.g. morsel bounds
	// lo/hi in [0, rows]). A zero-value Interval{} entry means "no fact"
	// (use Top explicitly if a parameter is truly unconstrained but later
	// entries carry facts).
	ParamRange []Interval
	// ValFacts attaches pointer contracts to individual SSA values —
	// typically runtime-call results (hash-table entry pointers, vector
	// slots) whose validity the runtime guarantees but the IR cannot
	// express. The producer of the IR is responsible for the contract
	// being true.
	ValFacts map[qir.Value]PtrFact
	// MinValid is the size of the guard page: addresses below it always
	// trap. Defaults to 4096 (the VM null guard) via NewFacts.
	MinValid int64
	// WideConsts marks OpConst values whose literal must be treated as
	// unknown (widened to the type's load bounds). The constant-hoisting
	// pass uses it to ask "which checks would the eliminator lose if this
	// literal were no longer compile-time known?" — a constant whose
	// widening shrinks the eliminable set is range-load-bearing and stays
	// inline.
	WideConsts map[qir.Value]bool
}

// NewFacts returns an empty fact set with the VM's default null-guard size.
func NewFacts() *Facts { return &Facts{MinValid: 4096} }

func (ft *Facts) paramRegion(i int) int64 {
	if ft == nil || i >= len(ft.ParamRegion) {
		return 0
	}
	return ft.ParamRegion[i]
}

func (ft *Facts) valFact(v qir.Value) (PtrFact, bool) {
	if ft == nil || ft.ValFacts == nil {
		return PtrFact{}, false
	}
	f, ok := ft.ValFacts[v]
	return f, ok
}

func (ft *Facts) paramRange(i int) (Interval, bool) {
	if ft == nil || i >= len(ft.ParamRange) {
		return Top(), false
	}
	r := ft.ParamRange[i]
	if r == (Interval{}) {
		return Top(), false
	}
	return r, true
}

// absVal is the abstract value of one SSA value: an absolute integer range
// (doubling as the absolute address range for pointers), an optional pointer
// derivation (anchor parameter + offset interval), and a nullness bit.
type absVal struct {
	r       Interval
	off     Interval  // offset from anchor; meaningful iff anchor != NoValue
	anchor  qir.Value // anchoring parameter value, or NoValue
	nonNull bool
	def     bool // visited by the fixpoint at least once
}

// undefVal is the not-yet-visited lattice bottom. Its range is Top, not the
// zero interval, so a value that somehow escapes evaluation is treated as
// unknown rather than as the constant zero.
func undefVal() absVal { return absVal{r: Top(), off: Top(), anchor: qir.NoValue} }

func topVal() absVal { return absVal{r: Top(), off: Top(), anchor: qir.NoValue, def: true} }

// join is the lattice union used at phi/select merge points.
func (a absVal) join(b absVal) absVal {
	if !a.def {
		return b
	}
	if !b.def {
		return a
	}
	out := absVal{r: a.r.Union(b.r), def: true, anchor: qir.NoValue, off: Top()}
	if a.anchor != qir.NoValue && a.anchor == b.anchor {
		out.anchor = a.anchor
		out.off = a.off.Union(b.off)
	}
	out.nonNull = a.nonNull && b.nonNull
	return out
}

// widenAfter is the per-value update budget before unstable bounds are
// widened to infinity; it bounds fixpoint iteration on loops.
const widenAfter = 4

// maxRefineDepth bounds the recursive re-evaluation performed by the
// block-contextual queries (RangeAt and friends).
const maxRefineDepth = 8

// Analysis holds the fixpoint results for one function plus the per-block
// branch-condition refinements, and answers contextual range, derivation,
// and access-safety queries.
type Analysis struct {
	F     *qir.Func
	Facts *Facts
	Dom   *qir.DomTree

	vals []absVal
	// cons[b] maps a value id to the interval it is known to lie in at any
	// point dominated by block b's entry, derived from branch conditions.
	cons []map[qir.Value]Interval
	// consNN[b] holds the values proven non-null at any point dominated by
	// block b's entry (from `p == null` / `p != null` branches).
	consNN []map[qir.Value]bool
	// posBlock/posIdx locate each instruction for dominance queries
	// (NoValue block for instructions not listed in any block).
	posBlock []qir.BlockID
	posIdx   []int32

	// MaxLive is the maximum number of simultaneously live SSA values at
	// any instruction boundary — the register-pressure statistic computed
	// from per-instruction liveness.
	MaxLive int
}

// Analyze runs the sparse conditional fixpoint over f under the given facts
// (nil is allowed and means "no facts, guard page 4096").
func Analyze(f *qir.Func, facts *Facts) *Analysis {
	if facts == nil {
		facts = NewFacts()
	}
	if facts.MinValid == 0 {
		facts.MinValid = 4096
	}
	a := &Analysis{F: f, Facts: facts, Dom: f.Dominators()}
	a.buildPositions()
	// Two rounds in the e-SSA style: the first fixpoint is context-free
	// (loop phis widen to infinity), the derived branch constraints then
	// feed a second fixpoint whose operand reads are met with the
	// constraints active at the use site — recovering finite ranges for
	// guarded induction variables (i < hi keeps i+1 from wrapping to Top).
	// Constraints are rebuilt once more from the tightened ranges.
	a.fixpoint()
	a.buildConstraints()
	a.fixpoint()
	a.buildConstraints()
	a.MaxLive = f.MaxLiveValues(f.LivenessAnalysis())
	return a
}

func (a *Analysis) buildPositions() {
	n := len(a.F.Instrs)
	a.posBlock = make([]qir.BlockID, n)
	a.posIdx = make([]int32, n)
	for i := range a.posBlock {
		a.posBlock[i] = -1
	}
	for b := range a.F.Blocks {
		for i, v := range a.F.Blocks[b].List {
			a.posBlock[v] = qir.BlockID(b)
			a.posIdx[v] = int32(i)
		}
	}
}

// fixpoint runs the global sparse worklist iteration with widening.
func (a *Analysis) fixpoint() {
	f := a.F
	n := len(f.Instrs)
	a.vals = make([]absVal, n)
	for i := range a.vals {
		a.vals[i] = undefVal()
	}

	// Def-use chains.
	users := make([][]qir.Value, n)
	var ops []qir.Value
	for v := 0; v < n; v++ {
		ops = f.Operands(qir.Value(v), ops[:0])
		for _, u := range ops {
			users[u] = append(users[u], qir.Value(v))
		}
	}

	// Seed with every instruction of every reachable block, in RPO.
	var work []qir.Value
	inWork := qir.NewBitSet(n)
	push := func(v qir.Value) {
		if !inWork.Get(v) {
			inWork.Set(v)
			work = append(work, v)
		}
	}
	for _, b := range a.Dom.RPO {
		for _, v := range f.Blocks[b].List {
			push(v)
		}
	}

	updates := make([]uint8, n)
	for i := 0; i < len(work); i++ {
		v := work[i]
		inWork.Clear(v)
		old := a.vals[v]
		nv := a.evalAt(v)
		if nv == old {
			continue
		}
		if updates[v] >= widenAfter {
			nv = widen(old, nv)
		}
		if nv == old {
			continue
		}
		if updates[v] < 255 {
			updates[v]++
		}
		a.vals[v] = nv
		for _, u := range users[v] {
			if inWork.Get(u) {
				continue
			}
			inWork.Set(u)
			work = append(work, u)
		}
	}
	// Compact the visited prefix of work away periodically is unnecessary:
	// widening bounds total pushes to O(n * widenAfter * fanout).
}

// consVal reads the current abstract value of u as observed in block b,
// meeting its range with the branch constraints active there (none during
// the first fixpoint round, when cons is still nil).
func (a *Analysis) consVal(b qir.BlockID, u qir.Value) absVal {
	av := a.vals[u]
	if b >= 0 && a.cons != nil {
		if m := a.cons[b]; m != nil {
			if c, ok := m[u]; ok {
				av.r = av.r.Meet(c)
			}
		}
	}
	return av
}

// evalAt evaluates instruction v in its defining block's context. Phi
// incomings are observed under the corresponding predecessor's constraints
// (the value flows along that edge); all other operands under the
// constraints of v's own block.
func (a *Analysis) evalAt(v qir.Value) absVal {
	in := &a.F.Instrs[v]
	if ft, ok := a.Facts.valFact(v); ok {
		return a.factVal(v, ft)
	}
	if in.Op == qir.OpPhi {
		pairs := a.F.PhiPairs(v)
		out := undefVal()
		for i := 0; i < len(pairs); i += 2 {
			pred := qir.BlockID(pairs[i])
			if a.Dom.Num[pred] < 0 {
				continue // value from an unreachable predecessor never flows
			}
			out = out.join(a.consVal(pred, pairs[i+1]))
		}
		return out
	}
	bb := a.posBlock[v]
	return a.eval(v, func(u qir.Value) absVal { return a.consVal(bb, u) })
}

// widen blows unstable bounds of the new value out to infinity so loops
// converge.
func widen(old, nv absVal) absVal {
	if !old.def {
		return nv
	}
	if nv.r.Lo < old.r.Lo {
		nv.r.Lo = NegInf
	}
	if nv.r.Hi > old.r.Hi {
		nv.r.Hi = PosInf
	}
	if nv.anchor != qir.NoValue {
		if nv.off.Lo < old.off.Lo {
			nv.off.Lo = NegInf
		}
		if nv.off.Hi > old.off.Hi {
			nv.off.Hi = PosInf
		}
	}
	return nv
}

// factVal builds the abstract value of a value carrying a PtrFact: anchored
// at itself with point offset zero. Its integer range stays unknown (VM
// addresses are opaque); nullness comes from the contract.
func (a *Analysis) factVal(v qir.Value, ft PtrFact) absVal {
	out := topVal()
	out.anchor = v
	out.off = Point(0)
	out.nonNull = !ft.MaybeNull
	if !ft.MaybeNull {
		out.r = Interval{a.Facts.MinValid, PosInf}
	} else {
		out.r = Interval{0, PosInf}
	}
	return out
}

// eval is the transfer function: the abstract value of instruction v given
// operand values supplied by get. It is shared between the global fixpoint
// (get = current state) and the contextual refinement queries (get =
// branch-refined recursive evaluation).
func (a *Analysis) eval(v qir.Value, get func(qir.Value) absVal) absVal {
	f := a.F
	in := &f.Instrs[v]
	if ft, ok := a.Facts.valFact(v); ok {
		return a.factVal(v, ft)
	}
	switch in.Op {
	case qir.OpParam:
		out := topVal()
		idx := int(in.Aux)
		if in.Type == qir.Ptr {
			if sz := a.Facts.paramRegion(idx); sz > 0 {
				out.anchor = v
				out.off = Point(0)
				out.nonNull = true
			}
		} else if r, ok := a.Facts.paramRange(idx); ok {
			out.r = r
		}
		return out

	case qir.OpConst:
		out := topVal()
		if a.Facts != nil && a.Facts.WideConsts[v] {
			// Hypothetically hoisted: the value is bound at execution time,
			// so only the type width is known.
			out.r = loadBounds(in.Type)
			return out
		}
		out.r = Point(in.Imm)
		out.nonNull = in.Type == qir.Ptr && in.Imm >= a.Facts.MinValid
		return out

	case qir.OpConstPool:
		// The slot value is bound per execution; only the type width is
		// known (slots hold canonical sign-extended values, so the typed
		// load bounds are exact).
		out := topVal()
		out.r = loadBounds(in.Type)
		return out

	case qir.OpNull:
		out := topVal()
		out.r = Point(0)
		return out

	case qir.OpConstF, qir.OpConst128, qir.OpConstStr, qir.OpFuncAddr,
		qir.OpCrc32, qir.OpLMulFold, qir.OpFBits,
		qir.OpFAdd, qir.OpFSub, qir.OpFMul, qir.OpFDiv,
		qir.OpBitsF, qir.OpSIToFP, qir.OpAtomicAdd, qir.OpCall:
		return topVal()

	case qir.OpAdd:
		x, y := get(in.A), get(in.B)
		out := a.derivePtr(x, y.r)
		out.r = x.r.Add(y.r)
		out.def = x.def && y.def
		return out

	case qir.OpSub:
		x, y := get(in.A), get(in.B)
		out := a.derivePtr(x, y.r.Neg())
		out.r = x.r.Sub(y.r)
		out.def = x.def && y.def
		return out

	case qir.OpMul:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.r = x.r.Mul(y.r)
		out.def = x.def && y.def
		return out

	case qir.OpSAddTrap:
		// Traps instead of wrapping, so saturating endpoints are sound.
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.r = x.r.AddSat(y.r)
		out.def = x.def && y.def
		return out
	case qir.OpSSubTrap:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.r = x.r.SubSat(y.r)
		out.def = x.def && y.def
		return out
	case qir.OpSMulTrap:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.r = x.r.MulSat(y.r)
		out.def = x.def && y.def
		return out

	case qir.OpSDiv, qir.OpUDiv:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		// Only the easy, common shape: positive divisor, non-negative (or
		// any finite, for sdiv) dividend. Division truncates toward zero
		// and is monotone in the dividend for fixed positive divisor.
		if y.r.Lo >= 1 && !x.r.IsTop() && x.r.Lo != NegInf && x.r.Hi != PosInf && y.r.Hi != PosInf {
			c := [4]int64{x.r.Lo / y.r.Lo, x.r.Lo / y.r.Hi, x.r.Hi / y.r.Lo, x.r.Hi / y.r.Hi}
			lo, hi := c[0], c[0]
			for _, q := range c[1:] {
				lo, hi = min64(lo, q), max64(hi, q)
			}
			if in.Op == qir.OpUDiv && x.r.Lo < 0 {
				// Negative dividend reinterpreted unsigned: give up.
				return out
			}
			out.r = Interval{lo, hi}
		}
		return out

	case qir.OpSRem, qir.OpURem:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if y.r.Lo >= 1 && y.r.Hi != PosInf {
			if x.r.Lo >= 0 {
				out.r = Interval{0, y.r.Hi - 1}
			} else if in.Op == qir.OpSRem {
				out.r = Interval{-(y.r.Hi - 1), y.r.Hi - 1}
			}
		}
		return out

	case qir.OpAnd:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if x.r.Lo >= 0 || y.r.Lo >= 0 {
			// A non-negative operand bounds the AND: 0 <= x&y <= x.
			hi := int64(PosInf)
			if x.r.Lo >= 0 {
				hi = x.r.Hi
			}
			if y.r.Lo >= 0 {
				hi = min64(hi, y.r.Hi)
			}
			out.r = Interval{0, hi}
		}
		return out

	case qir.OpOr, qir.OpXor:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if x.r.Lo >= 0 && y.r.Lo >= 0 && x.r.Hi != PosInf && y.r.Hi != PosInf {
			out.r = Interval{0, nextPow2Minus1(max64(x.r.Hi, y.r.Hi))}
		}
		return out

	case qir.OpShl:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if y.r.IsPoint() && y.r.Lo >= 0 && y.r.Lo < 63 {
			out.r = x.r.Mul(Point(int64(1) << uint(y.r.Lo)))
		}
		return out

	case qir.OpShr:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if x.r.Lo >= 0 && y.r.Lo >= 0 {
			sh := min64(y.r.Lo, 63)
			hi := x.r.Hi
			if hi != PosInf {
				hi >>= uint(sh)
			}
			out.r = Interval{0, hi}
		}
		return out

	case qir.OpSar:
		x, y := get(in.A), get(in.B)
		out := topVal()
		out.def = x.def && y.def
		if y.r.Lo >= 0 && y.r.Hi <= 63 {
			c := [4]int64{
				sar(x.r.Lo, y.r.Lo), sar(x.r.Lo, y.r.Hi),
				sar(x.r.Hi, y.r.Lo), sar(x.r.Hi, y.r.Hi),
			}
			lo, hi := c[0], c[0]
			for _, q := range c[1:] {
				lo, hi = min64(lo, q), max64(hi, q)
			}
			out.r = Interval{lo, hi}
		}
		return out

	case qir.OpNeg:
		x := get(in.A)
		out := topVal()
		out.r = x.r.Neg()
		out.def = x.def
		return out

	case qir.OpNot:
		// ^x == -x-1.
		x := get(in.A)
		out := topVal()
		out.r = x.r.Neg().Sub(Point(1))
		out.def = x.def
		return out

	case qir.OpICmp, qir.OpFCmp:
		out := topVal()
		out.r = Interval{0, 1}
		if in.Op == qir.OpICmp {
			x, y := get(in.A), get(in.B)
			out.def = x.def && y.def
			if val, known := cmpEval(in.Cmp(), x.r, y.r); known {
				if val {
					out.r = Point(1)
				} else {
					out.r = Point(0)
				}
			}
		}
		return out

	case qir.OpZExt:
		// Result is the low source-width bits zero-extended; if the operand
		// is already a canonical unsigned value of that width the range
		// passes through unchanged.
		x := get(in.A)
		out := topVal()
		out.def = x.def
		ub := unsignedBounds(f.ValueType(in.A))
		if x.r.Lo >= 0 && x.r.Hi <= ub.Hi {
			out.r = x.r
		} else {
			out.r = ub
		}
		return out

	case qir.OpSExt:
		x := get(in.A)
		out := topVal()
		out.def = x.def
		st := f.ValueType(in.A)
		if st == qir.I1 {
			// Back-ends differ on whether i1 sign-extends the low bit
			// (0/-1) or passes 0/1; cover both.
			out.r = Interval{-1, 1}
			if x.r.Hi <= 0 && x.r.Lo >= 0 {
				out.r = Point(0)
			}
			return out
		}
		tb := TypeBounds(st.Size())
		if tb.IsTop() || (x.r.Lo >= tb.Lo && x.r.Hi <= tb.Hi) {
			out.r = x.r
		} else {
			out.r = tb
		}
		return out

	case qir.OpTrunc:
		x := get(in.A)
		out := topVal()
		out.def = x.def
		if in.Type.Size() >= 8 {
			out.r = x.r
		} else if x.r.Lo >= 0 && x.r.Hi <= TypeBounds(in.Type.Size()).Hi {
			// Fits the narrow width with the sign bit clear: identical
			// under both truncation conventions.
			out.r = x.r
		} else {
			out.r = loadBounds(in.Type)
		}
		return out

	case qir.OpFPToSI:
		out := topVal()
		out.r = TypeBounds(in.Type.Size())
		return out

	case qir.OpGEP:
		x := get(in.A)
		delta := Point(in.Imm)
		var idxDef = true
		if in.B != qir.NoValue {
			y := get(in.B)
			idxDef = y.def
			delta = delta.Add(y.r.Mul(Point(int64(in.Aux))))
		}
		out := a.derivePtr(x, delta)
		out.r = x.r.Add(delta)
		out.def = x.def && idxDef
		return out

	case qir.OpLoad:
		out := topVal()
		// Width-limited result; loads may zero- or sign-extend depending
		// on the back-end, so cover both interpretations.
		out.r = loadBounds(in.Type)
		return out

	case qir.OpSelect:
		c, x, y := get(in.A), get(in.B), get(in.C)
		out := x.join(y)
		out.def = out.def && c.def
		return out

	case qir.OpPhi:
		// Handled by evalAt (incomings need per-predecessor context) and
		// deliberately not re-evaluated by the contextual queries.
		return a.vals[v]

	default:
		// Terminators, stores and anything unhandled produce no value.
		return topVal()
	}
}

// derivePtr propagates a pointer derivation through an offset adjustment.
func (a *Analysis) derivePtr(base absVal, delta Interval) absVal {
	out := topVal()
	if base.anchor != qir.NoValue {
		out.anchor = base.anchor
		out.off = base.off.Add(delta)
		out.nonNull = base.nonNull
	}
	return out
}

func sar(v, sh int64) int64 {
	if v == NegInf || v == PosInf {
		return v
	}
	return v >> uint(sh)
}

func nextPow2Minus1(v int64) int64 {
	if v <= 0 {
		return 0
	}
	r := int64(1)
	for r-1 < v {
		if r > PosInf/2 {
			return PosInf
		}
		r <<= 1
	}
	return r - 1
}

// unsignedBounds is the value range of a zero-extended t-typed quantity.
func unsignedBounds(t qir.Type) Interval {
	switch t {
	case qir.I1:
		return Interval{0, 1}
	case qir.I8:
		return Interval{0, 0xFF}
	case qir.I16:
		return Interval{0, 0xFFFF}
	case qir.I32:
		return Interval{0, 0xFFFFFFFF}
	}
	return Top()
}

// loadBounds covers both sign- and zero-extending interpretations of a load.
func loadBounds(t qir.Type) Interval {
	switch t {
	case qir.I1:
		return Interval{0, 1}
	case qir.I8:
		return Interval{-0x80, 0xFF}
	case qir.I16:
		return Interval{-0x8000, 0xFFFF}
	case qir.I32:
		return Interval{-0x80000000, 0xFFFFFFFF}
	}
	return Top()
}

// cmpEval decides an integer comparison over intervals when possible.
func cmpEval(p qir.Cmp, x, y Interval) (val, known bool) {
	if x.Empty() || y.Empty() {
		return false, false
	}
	unsignedOK := x.Lo >= 0 && y.Lo >= 0
	switch p {
	case qir.CmpEQ:
		if x.IsPoint() && y.IsPoint() && x.Lo == y.Lo {
			return true, true
		}
		if x.Meet(y).Empty() {
			return false, true
		}
	case qir.CmpNE:
		if v, k := cmpEval(qir.CmpEQ, x, y); k {
			return !v, true
		}
	case qir.CmpSLT:
		if x.Hi < y.Lo {
			return true, true
		}
		if x.Lo >= y.Hi {
			return false, true
		}
	case qir.CmpSLE:
		if x.Hi <= y.Lo {
			return true, true
		}
		if x.Lo > y.Hi {
			return false, true
		}
	case qir.CmpSGT:
		return cmpEval(qir.CmpSLT, y, x)
	case qir.CmpSGE:
		return cmpEval(qir.CmpSLE, y, x)
	case qir.CmpULT:
		if unsignedOK {
			return cmpEval(qir.CmpSLT, x, y)
		}
	case qir.CmpULE:
		if unsignedOK {
			return cmpEval(qir.CmpSLE, x, y)
		}
	case qir.CmpUGT:
		if unsignedOK {
			return cmpEval(qir.CmpSGT, x, y)
		}
	case qir.CmpUGE:
		if unsignedOK {
			return cmpEval(qir.CmpSGE, x, y)
		}
	}
	return false, false
}

// buildConstraints derives the per-block branch-condition refinements: for
// every conditional edge p->b where b has p as its only predecessor, the
// branch condition (or its negation) holds throughout the region b
// dominates. Constraints compose down the dominator tree; processing in RPO
// guarantees the unique predecessor (== idom) is finished first.
func (a *Analysis) buildConstraints() {
	f := a.F
	a.cons = make([]map[qir.Value]Interval, len(f.Blocks))
	a.consNN = make([]map[qir.Value]bool, len(f.Blocks))
	for _, b := range a.Dom.RPO {
		var m map[qir.Value]Interval
		var nn map[qir.Value]bool
		owned, nnOwned := false, false
		if idom := a.Dom.Idom[b]; idom != b && idom >= 0 {
			m = a.cons[idom] // shared until a local constraint forces a copy
			nn = a.consNN[idom]
		}
		add := func(v qir.Value, iv Interval) {
			if iv.IsTop() {
				return
			}
			if !owned {
				nm := make(map[qir.Value]Interval, len(m)+2)
				for k, val := range m {
					nm[k] = val
				}
				m, owned = nm, true
			}
			if old, ok := m[v]; ok {
				iv = iv.Meet(old)
			}
			m[v] = iv
			a.cons[b] = m
		}
		addNN := func(v qir.Value) {
			if !nnOwned {
				nm := make(map[qir.Value]bool, len(nn)+1)
				for k := range nn {
					nm[k] = true
				}
				nn, nnOwned = nm, true
			}
			nn[v] = true
			a.consNN[b] = nn
		}
		a.cons[b] = m
		a.consNN[b] = nn
		preds := f.Blocks[b].Preds
		if len(preds) != 1 {
			continue
		}
		p := preds[0]
		if a.Dom.Num[p] < 0 || a.Dom.Num[p] > a.Dom.Num[b] {
			continue // unreachable pred or back edge
		}
		t := f.Blocks[p].Terminator()
		if t == qir.NoValue {
			continue
		}
		term := &f.Instrs[t]
		if term.Op != qir.OpCondBr {
			continue
		}
		tTgt, fTgt := qir.BlockID(term.Aux), term.B
		if tTgt == fTgt {
			continue // both arms reach b: the condition tells us nothing
		}
		taken := tTgt == qir.BlockID(b)
		cond := term.A
		// The condition value itself is pinned on each arm.
		if taken {
			add(cond, Point(1))
		} else {
			add(cond, Point(0))
		}
		ci := &f.Instrs[cond]
		if ci.Op != qir.OpICmp {
			continue
		}
		pred := ci.Cmp()
		if !taken {
			pred = negateCmp(pred)
		}
		xr := a.rangeWithCons(p, ci.A)
		yr := a.rangeWithCons(p, ci.B)
		nx, ny := refineByCmp(pred, xr, yr)
		add(ci.A, nx)
		add(ci.B, ny)
		// `p != null` (the negation of an `p == null` guard) proves
		// non-nullness for the region b dominates.
		if pred == qir.CmpNE {
			if yr.IsPoint() && yr.Lo == 0 {
				addNN(ci.A)
			}
			if xr.IsPoint() && xr.Lo == 0 {
				addNN(ci.B)
			}
		}
	}
}

// rangeWithCons is the global range of v met with the constraints active at
// block b (no recursive refinement; used while constraints are being built).
func (a *Analysis) rangeWithCons(b qir.BlockID, v qir.Value) Interval {
	r := a.vals[v].r
	if m := a.cons[b]; m != nil {
		if c, ok := m[v]; ok {
			r = r.Meet(c)
		}
	}
	return r
}

func negateCmp(p qir.Cmp) qir.Cmp {
	switch p {
	case qir.CmpEQ:
		return qir.CmpNE
	case qir.CmpNE:
		return qir.CmpEQ
	case qir.CmpSLT:
		return qir.CmpSGE
	case qir.CmpSLE:
		return qir.CmpSGT
	case qir.CmpSGT:
		return qir.CmpSLE
	case qir.CmpSGE:
		return qir.CmpSLT
	case qir.CmpULT:
		return qir.CmpUGE
	case qir.CmpULE:
		return qir.CmpUGT
	case qir.CmpUGT:
		return qir.CmpULE
	case qir.CmpUGE:
		return qir.CmpULT
	}
	return p
}

// refineByCmp narrows both operand ranges under the assumption "x p y".
func refineByCmp(p qir.Cmp, x, y Interval) (nx, ny Interval) {
	nx, ny = x, y
	switch p {
	case qir.CmpEQ:
		nx = x.Meet(y)
		ny = nx
	case qir.CmpNE:
		if y.IsPoint() {
			if x.Lo == y.Lo {
				nx.Lo = SatAdd(nx.Lo, 1)
			}
			if x.Hi == y.Lo {
				nx.Hi = SatAdd(nx.Hi, -1)
			}
		}
		if x.IsPoint() {
			if y.Lo == x.Lo {
				ny.Lo = SatAdd(ny.Lo, 1)
			}
			if y.Hi == x.Lo {
				ny.Hi = SatAdd(ny.Hi, -1)
			}
		}
	case qir.CmpSLT:
		nx.Hi = min64(nx.Hi, SatAdd(y.Hi, -1))
		ny.Lo = max64(ny.Lo, SatAdd(x.Lo, 1))
	case qir.CmpSLE:
		nx.Hi = min64(nx.Hi, y.Hi)
		ny.Lo = max64(ny.Lo, x.Lo)
	case qir.CmpSGT:
		ny, nx = refineByCmp(qir.CmpSLT, y, x)
	case qir.CmpSGE:
		ny, nx = refineByCmp(qir.CmpSLE, y, x)
	case qir.CmpULT:
		// x u< y with y >= 0 pins x into [0, y.Hi-1] — the canonical
		// bounds-check shape. Refining y upward requires knowing x >= 0.
		if y.Lo >= 0 {
			nx = nx.Meet(Interval{0, SatAdd(y.Hi, -1)})
		}
		if x.Lo >= 0 {
			ny.Lo = max64(ny.Lo, SatAdd(x.Lo, 1))
		}
	case qir.CmpULE:
		if y.Lo >= 0 {
			nx = nx.Meet(Interval{0, y.Hi})
		}
		if x.Lo >= 0 {
			ny.Lo = max64(ny.Lo, x.Lo)
		}
	case qir.CmpUGT:
		ny, nx = refineByCmp(qir.CmpULT, y, x)
	case qir.CmpUGE:
		ny, nx = refineByCmp(qir.CmpULE, y, x)
	}
	return nx, ny
}

// valAt is the block-contextual abstract value: the global result met with
// branch constraints, sharpened by depth-bounded re-evaluation through the
// operand chain. Phi nodes are deliberately not re-evaluated recursively —
// their precision comes from constraints attached to the phi value itself —
// which keeps the refinement sound without iteration.
func (a *Analysis) valAt(b qir.BlockID, v qir.Value, depth int) absVal {
	av := a.vals[v]
	if m := a.cons[b]; m != nil {
		if c, ok := m[v]; ok {
			av.r = av.r.Meet(c)
		}
	}
	if m := a.consNN[b]; m != nil && m[v] {
		av.nonNull = true
	}
	if depth <= 0 || !av.def {
		return av
	}
	in := &a.F.Instrs[v]
	if in.Op == qir.OpPhi || in.Op == qir.OpParam || in.Op.IsConst() {
		return av
	}
	re := a.eval(v, func(u qir.Value) absVal { return a.valAt(b, u, depth-1) })
	av.r = av.r.Meet(re.r)
	if av.anchor == qir.NoValue && re.anchor != qir.NoValue {
		av.anchor, av.off = re.anchor, re.off
	} else if av.anchor != qir.NoValue && av.anchor == re.anchor {
		av.off = av.off.Meet(re.off)
	}
	av.nonNull = av.nonNull || re.nonNull
	return av
}

// Range returns the context-free value range of v.
func (a *Analysis) Range(v qir.Value) Interval { return a.vals[v].r }

// RangeAt returns the value range of v at any point dominated by block b's
// entry, refined by the branch conditions proven on the path to b.
func (a *Analysis) RangeAt(b qir.BlockID, v qir.Value) Interval {
	return a.valAt(b, v, maxRefineDepth).r
}

// NonNull reports whether v is proven non-null.
func (a *Analysis) NonNull(v qir.Value) bool { return a.vals[v].nonNull }

// Derivation returns the pointer derivation of v: the anchoring parameter
// and the byte-offset interval from it. ok is false for unanchored values.
func (a *Analysis) Derivation(v qir.Value) (anchor qir.Value, off Interval, ok bool) {
	av := a.vals[v]
	return av.anchor, av.off, av.anchor != qir.NoValue
}

// AccessSafe reports whether a size-byte access through addr, executed in
// block b, is statically proven in-bounds. reason describes the proof.
func (a *Analysis) AccessSafe(b qir.BlockID, addr qir.Value, size int64) (bool, string) {
	if size <= 0 {
		return false, ""
	}
	av := a.valAt(b, addr, maxRefineDepth)
	if av.anchor != qir.NoValue {
		if lo, hi, ok := a.anchorRegion(av.anchor); ok &&
			av.off.Lo >= lo && av.off.Hi != PosInf && av.off.Hi <= hi-size &&
			a.nonNullAt(b, av.anchor) {
			return true, "region"
		}
	}
	if av.r.Lo > 0 && av.r.Hi != PosInf {
		for _, reg := range a.Facts.Regions {
			if av.r.Lo >= reg.Base && av.r.Hi+size <= reg.Base+reg.Size {
				return true, "absolute"
			}
		}
	}
	return false, ""
}

// anchorRegion returns the valid byte range [lo, hi) around an anchor value
// (relative to the anchor itself): [0, size) for parameters with a declared
// region, [-Pre, Post) for values carrying a PtrFact.
func (a *Analysis) anchorRegion(anchor qir.Value) (lo, hi int64, ok bool) {
	if ft, have := a.Facts.valFact(anchor); have {
		return -ft.Pre, ft.Post, true
	}
	in := &a.F.Instrs[anchor]
	if in.Op == qir.OpParam {
		if sz := a.Facts.paramRegion(int(in.Aux)); sz > 0 {
			return 0, sz, true
		}
	}
	return 0, 0, false
}

// nonNullAt reports whether v is proven non-null at any point dominated by
// block b's entry (globally, or by a dominating null-check branch).
func (a *Analysis) nonNullAt(b qir.BlockID, v qir.Value) bool {
	if a.vals[v].nonNull {
		return true
	}
	if m := a.consNN[b]; m != nil && m[v] {
		return true
	}
	return false
}

// Access describes one memory instruction and the analysis verdict on it.
type Access struct {
	V     qir.Value
	Block qir.BlockID
	Size  int64
	Store bool
	// Safe means the runtime bounds/null check is provably redundant.
	Safe bool
	// Reason is "region", "absolute" or "redundant" when Safe.
	Reason string
}

// Accesses classifies every load and store in reachable blocks. Beyond the
// range/region proofs it applies a dominance-based redundancy tier: an
// access whose bytes are covered by a dominating access at the same
// activation-invariant address needs no check, because VM memory validity is
// monotone (the arena never shrinks) and the dominating access either
// checked or proved the same bytes.
func (a *Analysis) Accesses() []Access {
	f := a.F
	var out []Access
	type key struct {
		anchor qir.Value // NoValue for absolute or ssa-value keys
		base   int64     // offset (anchored), address (absolute), value id (ssa)
		kind   uint8     // 0 anchored-point, 1 absolute-point, 2 same-ssa-addr
	}
	type site struct {
		idx       int // index in out
		invariant bool
	}
	sites := make(map[key][]site)
	for _, b := range a.Dom.RPO {
		for _, v := range f.Blocks[b].List {
			in := &f.Instrs[v]
			if in.Op != qir.OpLoad && in.Op != qir.OpStore {
				continue
			}
			acc := Access{V: v, Block: b, Store: in.Op == qir.OpStore}
			if acc.Store {
				acc.Size = f.ValueType(in.B).Size()
			} else {
				acc.Size = in.Type.Size()
			}
			acc.Safe, acc.Reason = a.AccessSafe(b, in.A, acc.Size)
			av := a.valAt(b, in.A, maxRefineDepth)
			k := key{anchor: qir.NoValue, base: int64(in.A), kind: 2}
			invariant := false
			if av.anchor != qir.NoValue && av.off.IsPoint() {
				k = key{anchor: av.anchor, base: av.off.Lo, kind: 0}
				// Only parameter anchors are activation-invariant: a
				// call-result or phi anchor (PtrFact) can take a new
				// value on every loop iteration.
				invariant = f.Instrs[av.anchor].Op == qir.OpParam
			} else if av.r.IsPoint() {
				k = key{anchor: qir.NoValue, base: av.r.Lo, kind: 1}
				invariant = true
			}
			sites[k] = append(sites[k], site{idx: len(out), invariant: invariant})
			out = append(out, acc)
		}
	}
	// Redundancy tier. Within a key the sites are in RPO/program order for
	// same-block entries, so earlier sites can cover later ones.
	for _, list := range sites {
		for i, y := range list {
			ya := &out[y.idx]
			if ya.Safe {
				continue
			}
			for j, x := range list {
				if j == i {
					continue
				}
				xa := &out[x.idx]
				if xa.Size < ya.Size {
					continue // must cover all accessed bytes
				}
				if xa.Block == ya.Block {
					if a.posIdx[xa.V] < a.posIdx[ya.V] {
						ya.Safe, ya.Reason = true, "redundant"
						break
					}
					continue
				}
				// Cross-block coverage needs an activation-invariant
				// address: same-SSA keys may be loop-variant.
				if y.invariant && x.invariant &&
					a.Dom.Dominates(xa.Block, ya.Block) {
					ya.Safe, ya.Reason = true, "redundant"
					break
				}
			}
		}
	}
	return out
}
