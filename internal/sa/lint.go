package sa

import (
	"fmt"

	"qcc/internal/qir"
)

// FindingKind classifies a lint diagnostic.
type FindingKind uint8

// Lint finding kinds.
const (
	// FindUnreachable flags a basic block no path from entry reaches.
	FindUnreachable FindingKind = iota
	// FindDeadStore flags a store whose bytes are overwritten in the same
	// block before any possible read.
	FindDeadStore
	// FindAlwaysTrap flags an operation that traps on every execution:
	// a load/store whose address range lies entirely inside the null guard
	// page, or a division whose divisor is the constant zero.
	FindAlwaysTrap
	// FindContradiction flags a conditional branch whose comparison is
	// decided by the inferred value ranges (one arm can never execute).
	FindContradiction
)

var findingNames = [...]string{"unreachable-block", "dead-store", "always-trap", "range-contradiction"}

func (k FindingKind) String() string {
	if int(k) < len(findingNames) {
		return findingNames[k]
	}
	return fmt.Sprintf("finding(%d)", uint8(k))
}

// Finding is one lint diagnostic, locatable by function/block/instruction.
type Finding struct {
	Kind  FindingKind
	Func  string
	Block qir.BlockID
	// Instr is the offending instruction id, or qir.NoValue for
	// block-level findings.
	Instr qir.Value
	Msg   string
}

func (f Finding) String() string {
	loc := fmt.Sprintf("%s:b%d", f.Func, f.Block)
	if f.Instr != qir.NoValue {
		loc += fmt.Sprintf(":%%%d", f.Instr)
	}
	return fmt.Sprintf("%s: %s: %s", loc, f.Kind, f.Msg)
}

// Lint reports the diagnostics the analysis can prove for the function.
func (a *Analysis) Lint() []Finding {
	var out []Finding
	f := a.F
	for b := range f.Blocks {
		if a.Dom.Num[b] < 0 {
			out = append(out, Finding{
				Kind: FindUnreachable, Func: f.Name, Block: qir.BlockID(b),
				Instr: qir.NoValue,
				Msg:   fmt.Sprintf("block b%d is unreachable from entry", b),
			})
		}
	}
	for _, b := range a.Dom.RPO {
		out = a.lintBlock(b, out)
	}
	return out
}

func (a *Analysis) lintBlock(b qir.BlockID, out []Finding) []Finding {
	f := a.F
	// pending tracks in-block stores not yet observable by a read, keyed the
	// same way the redundancy tier keys addresses.
	type skey struct {
		anchor qir.Value
		base   int64
		kind   uint8
	}
	type pstore struct {
		v    qir.Value
		size int64
	}
	pending := map[skey]pstore{}
	clobberAll := func() {
		for k := range pending {
			delete(pending, k)
		}
	}
	for _, v := range f.Blocks[b].List {
		in := &f.Instrs[v]
		switch in.Op {
		case qir.OpLoad, qir.OpStore, qir.OpAtomicAdd:
			size := in.Type.Size()
			if in.Op == qir.OpStore {
				size = f.ValueType(in.B).Size()
			}
			av := a.valAt(b, in.A, maxRefineDepth)
			// Definite null-page access: every possible address is below
			// the guard page.
			if av.r.Lo >= 0 && av.r.Hi < a.Facts.MinValid && !av.nonNull {
				out = append(out, Finding{
					Kind: FindAlwaysTrap, Func: f.Name, Block: b, Instr: v,
					Msg: fmt.Sprintf("%s address always in [%d,%d], inside the %d-byte null guard page",
						in.Op, av.r.Lo, av.r.Hi, a.Facts.MinValid),
				})
			}
			if in.Op == qir.OpLoad || in.Op == qir.OpAtomicAdd {
				// Any read (address may alias anything) observes all
				// pending stores.
				clobberAll()
				continue
			}
			k := skey{anchor: qir.NoValue, base: int64(in.A), kind: 2}
			if av.anchor != qir.NoValue && av.off.IsPoint() {
				k = skey{anchor: av.anchor, base: av.off.Lo, kind: 0}
			} else if av.r.IsPoint() {
				k = skey{anchor: qir.NoValue, base: av.r.Lo, kind: 1}
			}
			if prev, ok := pending[k]; ok && size >= prev.size {
				out = append(out, Finding{
					Kind: FindDeadStore, Func: f.Name, Block: b, Instr: prev.v,
					Msg: fmt.Sprintf("store %%%d is overwritten by %%%d at the same address before any read", prev.v, v),
				})
			}
			pending[k] = pstore{v: v, size: size}
		case qir.OpCall:
			// Calls may read memory.
			clobberAll()
		case qir.OpSDiv, qir.OpSRem, qir.OpUDiv, qir.OpURem:
			dr := a.RangeAt(b, in.B)
			if dr == Point(0) {
				out = append(out, Finding{
					Kind: FindAlwaysTrap, Func: f.Name, Block: b, Instr: v,
					Msg: fmt.Sprintf("%s divisor is always zero", in.Op),
				})
			}
		case qir.OpCondBr:
			ci := &f.Instrs[in.A]
			if ci.Op != qir.OpICmp {
				continue
			}
			xr := a.RangeAt(b, ci.A)
			yr := a.RangeAt(b, ci.B)
			if val, known := cmpEval(ci.Cmp(), xr, yr); known {
				always := "true"
				dead := in.B
				if !val {
					always = "false"
					dead = qir.BlockID(in.Aux)
				}
				out = append(out, Finding{
					Kind: FindContradiction, Func: f.Name, Block: b, Instr: v,
					Msg: fmt.Sprintf("condition %%%d is always %s given ranges %s %s %s; the b%d arm is dead",
						in.A, always, xr, ci.Cmp(), yr, dead),
				})
			}
		}
	}
	return out
}

// LintFunc is the convenience entry point: analyze f under facts and lint it.
func LintFunc(f *qir.Func, facts *Facts) []Finding {
	return Analyze(f, facts).Lint()
}
