// Package sa is the compile-time static-analysis framework over SSA QIR:
// sparse conditional value-range analysis (integer intervals refined by
// dominating branch conditions), nullness, and base-pointer derivation
// analysis — the static analog of the offset-chain folding the vm's fusion
// pass performs at decode time. Its facts feed the check-elimination rewrite
// in internal/codegen and the qlint diagnostics.
package sa

import (
	"math"
	"strconv"
)

// Infinity sentinels. Interval arithmetic saturates at these bounds, so an
// unknown quantity is representable as [NegInf, PosInf] without special
// cases in the transfer functions.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is an inclusive signed-64-bit value range [Lo, Hi]. The empty
// interval (Lo > Hi) marks contradictory facts (e.g. a branch condition that
// cannot hold).
type Interval struct {
	Lo, Hi int64
}

// String renders the interval with inf/-inf for the sentinel bounds.
func (i Interval) String() string {
	if i.Empty() {
		return "[empty]"
	}
	lo, hi := "-inf", "+inf"
	if i.Lo != NegInf {
		lo = strconv.FormatInt(i.Lo, 10)
	}
	if i.Hi != PosInf {
		hi = strconv.FormatInt(i.Hi, 10)
	}
	return "[" + lo + "," + hi + "]"
}

// Top is the unconstrained interval.
func Top() Interval { return Interval{NegInf, PosInf} }

// Point is the singleton interval {v}.
func Point(v int64) Interval { return Interval{v, v} }

// Range is the interval [lo, hi].
func Range(lo, hi int64) Interval { return Interval{lo, hi} }

// Empty reports whether the interval contains no values.
func (i Interval) Empty() bool { return i.Lo > i.Hi }

// IsPoint reports whether the interval is a single value.
func (i Interval) IsPoint() bool { return i.Lo == i.Hi }

// IsTop reports whether the interval is unconstrained.
func (i Interval) IsTop() bool { return i.Lo == NegInf && i.Hi == PosInf }

// Contains reports whether v lies in the interval.
func (i Interval) Contains(v int64) bool { return i.Lo <= v && v <= i.Hi }

// Union returns the smallest interval covering both inputs.
func (i Interval) Union(o Interval) Interval {
	if i.Empty() {
		return o
	}
	if o.Empty() {
		return i
	}
	return Interval{min64(i.Lo, o.Lo), max64(i.Hi, o.Hi)}
}

// Meet intersects two intervals; the result may be empty.
func (i Interval) Meet(o Interval) Interval {
	return Interval{max64(i.Lo, o.Lo), min64(i.Hi, o.Hi)}
}

// SatAdd is saturating signed addition, used when refining ranges from
// branch predicates (where endpoint saturation is sound) and for the
// trap-on-overflow arithmetic ops (which never wrap at runtime).
func SatAdd(a, b int64) int64 {
	s := a + b
	// Overflow iff both operands share a sign the sum lost.
	if a > 0 && b > 0 && s < 0 {
		return PosInf
	}
	if a < 0 && b < 0 && s >= 0 {
		return NegInf
	}
	return s
}

func addExact(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subExact(a, b int64) (int64, bool) {
	s := a - b
	// Overflow iff a and b have opposite signs and the result flipped away
	// from a's sign.
	if (a^b) < 0 && (a^s) < 0 {
		return 0, false
	}
	return s, true
}

func mulExact(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == NegInf && b == -1) || (b == NegInf && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Add returns the interval of sums. Runtime arithmetic wraps at 64 bits, so
// any endpoint overflow forces Top: with exact endpoints, every element sum
// is representable and hence does not wrap.
func (i Interval) Add(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	lo, ok1 := addExact(i.Lo, o.Lo)
	hi, ok2 := addExact(i.Hi, o.Hi)
	if !ok1 || !ok2 {
		return Top()
	}
	return Interval{lo, hi}
}

// Sub returns the interval of differences; endpoint overflow forces Top
// (wrapping runtime semantics).
func (i Interval) Sub(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	lo, ok1 := subExact(i.Lo, o.Hi)
	hi, ok2 := subExact(i.Hi, o.Lo)
	if !ok1 || !ok2 {
		return Top()
	}
	return Interval{lo, hi}
}

// Mul returns the interval of products by corner evaluation; any corner
// overflow forces Top (wrapping runtime semantics).
func (i Interval) Mul(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	var c [4]int64
	pairs := [4][2]int64{{i.Lo, o.Lo}, {i.Lo, o.Hi}, {i.Hi, o.Lo}, {i.Hi, o.Hi}}
	for k, p := range pairs {
		v, ok := mulExact(p[0], p[1])
		if !ok {
			return Top()
		}
		c[k] = v
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = min64(lo, v), max64(hi, v)
	}
	return Interval{lo, hi}
}

// Neg returns the negated interval; negating MinInt64 wraps, forcing Top.
func (i Interval) Neg() Interval {
	if i.Empty() {
		return i
	}
	if i.Lo == NegInf {
		return Top()
	}
	return Interval{-i.Hi, -i.Lo}
}

// AddSat is saturating interval addition — sound only for operations that
// trap instead of wrapping on overflow (OpSAddTrap).
func (i Interval) AddSat(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	return Interval{SatAdd(i.Lo, o.Lo), SatAdd(i.Hi, o.Hi)}
}

// SubSat is saturating interval subtraction (for OpSSubTrap).
func (i Interval) SubSat(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	return Interval{SatAdd(i.Lo, satNeg(o.Hi)), SatAdd(i.Hi, satNeg(o.Lo))}
}

func satNeg(v int64) int64 {
	if v == NegInf {
		return PosInf
	}
	return -v
}

func satMul(a, b int64) int64 {
	v, ok := mulExact(a, b)
	if !ok {
		if (a > 0) == (b > 0) {
			return PosInf
		}
		return NegInf
	}
	return v
}

// MulSat is saturating interval multiplication (for OpSMulTrap).
func (i Interval) MulSat(o Interval) Interval {
	if i.Empty() || o.Empty() {
		return i
	}
	c := [4]int64{
		satMul(i.Lo, o.Lo), satMul(i.Lo, o.Hi),
		satMul(i.Hi, o.Lo), satMul(i.Hi, o.Hi),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = min64(lo, v), max64(hi, v)
	}
	return Interval{lo, hi}
}

// TypeBounds returns the representable range of a w-byte signed integer;
// values wider than 8 bytes (i128) fall back to the full 64-bit range of
// their low half.
func TypeBounds(sizeBytes int64) Interval {
	if sizeBytes >= 8 || sizeBytes <= 0 {
		return Top()
	}
	half := int64(1) << (uint(sizeBytes)*8 - 1)
	return Interval{-half, half - 1}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
