// Package sql implements a small SQL front-end over the plan layer:
// SELECT-FROM-JOIN-WHERE-GROUP BY-HAVING-ORDER BY-LIMIT with the scalar
// expressions query compilation exercises (decimal arithmetic, LIKE,
// BETWEEN, CASE). Decimal literals use a fixed scale of 2 (cents).
package sql

import (
	"fmt"
	"strconv"
	"strings"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Parse compiles a SQL string into a validated plan against the catalog.
func Parse(query string, cat *rt.Catalog) (plan.Node, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	n, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	return n, nil
}

type tkKind uint8

const (
	tkEOF tkKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct
)

type token struct {
	kind tkKind
	text string // uppercased for idents
	raw  string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sql: unterminated string")
			}
			toks = append(toks, token{kind: tkString, raw: src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tkNumber, raw: src[i:j]})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' || src[j] == '.' ||
				src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' ||
				src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{kind: tkIdent, text: strings.ToUpper(src[i:j]), raw: src[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tkPunct, text: two})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>':
				toks = append(toks, token{kind: tkPunct, text: string(c)})
				i++
			default:
				return nil, fmt.Errorf("sql: bad character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tkEOF})
	return toks, nil
}

// binding maps visible column names to output ordinals and types.
type binding struct {
	names []string // qualified "table.col" and bare "col" both resolve
	types []qir.Type
}

func (b *binding) lookup(name string) (int, qir.Type, bool) {
	up := strings.ToUpper(name)
	// Exact qualified match first, then unique suffix match.
	for i, n := range b.names {
		if strings.ToUpper(n) == up {
			return i, b.types[i], true
		}
	}
	found := -1
	for i, n := range b.names {
		parts := strings.Split(strings.ToUpper(n), ".")
		if parts[len(parts)-1] == up {
			if found >= 0 {
				return 0, 0, false // ambiguous
			}
			found = i
		}
	}
	if found >= 0 {
		return found, b.types[found], true
	}
	return 0, 0, false
}

type parser struct {
	toks []token
	pos  int
	cat  *rt.Catalog
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(word string) bool {
	t := p.peek()
	if t.kind == tkIdent && t.text == word || t.kind == tkPunct && t.text == word {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(word string) error {
	if !p.accept(word) {
		return fmt.Errorf("sql: expected %s, got %q", word, p.peek().raw+p.peek().text)
	}
	return nil
}

// selectStmt parses one SELECT statement.
func (p *parser) selectStmt() (plan.Node, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	type selItem struct {
		agg  *plan.AggFn
		expr func(b *binding) (plan.Expr, error) // nil for COUNT(*)
		name string
	}
	var items []selItem
	star := p.peek().kind == tkPunct && p.peek().text == "*"
	if star {
		// SELECT *: one item with no expression.
		p.next()
		items = append(items, selItem{})
	}
	for !star {
		it := selItem{}
		t := p.peek()
		if t.kind == tkIdent && isAggName(t.text) && p.toks[p.pos+1].text == "(" {
			fn := aggByName(t.text)
			p.next()
			p.next() // '('
			it.agg = &fn
			if p.peek().text == "*" {
				p.next()
			} else {
				e, err := p.parseExprDeferred()
				if err != nil {
					return nil, err
				}
				it.expr = e
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExprDeferred()
			if err != nil {
				return nil, err
			}
			it.expr = e
		}
		if p.accept("AS") {
			it.name = p.next().raw
		}
		items = append(items, it)
		if !p.accept(",") {
			break
		}
	}

	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	node, bind, err := p.fromClause()
	if err != nil {
		return nil, err
	}

	if p.accept("WHERE") {
		pe, err := p.parseExprDeferred()
		if err != nil {
			return nil, err
		}
		pred, err := pe(bind)
		if err != nil {
			return nil, err
		}
		if pred.Type() != qir.I1 {
			return nil, fmt.Errorf("sql: WHERE predicate is %s", pred.Type())
		}
		node = &plan.Select{Input: node, Pred: pred}
	}

	hasAgg := false
	for _, it := range items {
		if it.agg != nil {
			hasAgg = true
		}
	}
	var groupKeys []func(b *binding) (plan.Expr, error)
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExprDeferred()
			if err != nil {
				return nil, err
			}
			groupKeys = append(groupKeys, e)
			if !p.accept(",") {
				break
			}
		}
		hasAgg = true
	}

	outBind := bind
	if hasAgg {
		g := &plan.GroupBy{Input: node}
		nb := &binding{}
		for ki, ke := range groupKeys {
			e, err := ke(bind)
			if err != nil {
				return nil, err
			}
			g.Keys = append(g.Keys, e)
			name := fmt.Sprintf("key%d", ki)
			if c, ok := e.(*plan.Col); ok && c.Name != "" {
				name = c.Name
			}
			g.Names = append(g.Names, name)
			nb.names = append(nb.names, name)
			nb.types = append(nb.types, e.Type())
		}
		for i, it := range items {
			if it.agg == nil {
				continue
			}
			var arg plan.Expr
			if it.expr != nil {
				a, err := it.expr(bind)
				if err != nil {
					return nil, err
				}
				arg = a
			}
			name := it.name
			if name == "" {
				name = fmt.Sprintf("agg%d", i)
			}
			g.Aggs = append(g.Aggs, plan.AggExpr{Fn: *it.agg, Arg: arg, Name: name})
		}
		node = g
		sch := g.Schema()
		nb2 := &binding{}
		for _, ci := range sch {
			nb2.names = append(nb2.names, ci.Name)
			nb2.types = append(nb2.types, ci.Type)
		}
		outBind = nb2

		// Non-aggregate select items must be group keys; build the final
		// projection mapping select order onto the group-by schema.
		var exprs []plan.Expr
		var names []string
		keyIdx := 0
		aggIdx := len(g.Keys)
		for _, it := range items {
			if it.agg != nil {
				exprs = append(exprs, &plan.Col{Idx: aggIdx, Ty: sch[aggIdx].Type, Name: sch[aggIdx].Name})
				names = append(names, sch[aggIdx].Name)
				aggIdx++
			} else {
				if keyIdx >= len(g.Keys) {
					return nil, fmt.Errorf("sql: non-aggregate select item without matching GROUP BY key")
				}
				exprs = append(exprs, &plan.Col{Idx: keyIdx, Ty: sch[keyIdx].Type, Name: sch[keyIdx].Name})
				names = append(names, sch[keyIdx].Name)
				keyIdx++
			}
		}
		if p.accept("HAVING") {
			he, err := p.parseExprDeferred()
			if err != nil {
				return nil, err
			}
			pred, err := he(outBind)
			if err != nil {
				return nil, err
			}
			node = &plan.Select{Input: node, Pred: pred}
		}
		node = &plan.Project{Input: node, Exprs: exprs, Names: names}
		pb := &binding{}
		for i, e := range exprs {
			pb.names = append(pb.names, names[i])
			pb.types = append(pb.types, e.Type())
		}
		outBind = pb
	} else {
		// Plain projection (unless SELECT *).
		if !star {
			var exprs []plan.Expr
			var names []string
			for i, it := range items {
				e, err := it.expr(bind)
				if err != nil {
					return nil, err
				}
				exprs = append(exprs, e)
				name := it.name
				if name == "" {
					if c, ok := e.(*plan.Col); ok && c.Name != "" {
						name = c.Name
					} else {
						name = fmt.Sprintf("col%d", i)
					}
				}
				names = append(names, name)
			}
			node = &plan.Project{Input: node, Exprs: exprs, Names: names}
			pb := &binding{}
			for i, e := range exprs {
				pb.names = append(pb.names, names[i])
				pb.types = append(pb.types, e.Type())
			}
			outBind = pb
		}
	}

	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		s := &plan.Sort{Input: node}
		for {
			e, err := p.parseExprDeferred()
			if err != nil {
				return nil, err
			}
			ex, err := e(outBind)
			if err != nil {
				return nil, err
			}
			key := plan.SortKey{E: ex}
			if p.accept("DESC") {
				key.Desc = true
			} else {
				p.accept("ASC")
			}
			s.Keys = append(s.Keys, key)
			if !p.accept(",") {
				break
			}
		}
		node = s
	}
	if p.accept("LIMIT") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number")
		}
		n, err := strconv.ParseInt(t.raw, 10, 64)
		if err != nil {
			return nil, err
		}
		node = &plan.Limit{Input: node, N: n}
	}
	return node, nil
}

func isAggName(s string) bool {
	switch s {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func aggByName(s string) plan.AggFn {
	switch s {
	case "SUM":
		return plan.AggSum
	case "COUNT":
		return plan.AggCount
	case "AVG":
		return plan.AggAvg
	case "MIN":
		return plan.AggMin
	}
	return plan.AggMax
}

// fromClause parses `table [alias] (JOIN table [alias] ON a = b)*`,
// building left-deep hash joins with the new table on the build side.
func (p *parser) fromClause() (plan.Node, *binding, error) {
	node, bind, err := p.tableRef()
	if err != nil {
		return nil, nil, err
	}
	for p.accept("JOIN") {
		rnode, rbind, err := p.tableRef()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, nil, err
		}
		// Join keys are simple column expressions around the equality.
		le, err := p.addExpr()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, nil, err
		}
		re, err := p.addExpr()
		if err != nil {
			return nil, nil, err
		}
		// Resolve each side against whichever input defines it.
		lx, lerr := le(bind)
		var buildKey, probeKey plan.Expr
		if lerr == nil {
			probeKey = lx
			bk, err := re(rbind)
			if err != nil {
				return nil, nil, fmt.Errorf("sql: join key: %w", err)
			}
			buildKey = bk
		} else {
			bk, err := le(rbind)
			if err != nil {
				return nil, nil, fmt.Errorf("sql: join key: %w", err)
			}
			buildKey = bk
			pk, err := re(bind)
			if err != nil {
				return nil, nil, fmt.Errorf("sql: join key: %w", err)
			}
			probeKey = pk
		}
		buildKey, probeKey, err = coercePair(buildKey, probeKey)
		if err != nil {
			return nil, nil, err
		}
		node = &plan.HashJoin{
			Build: rnode, Probe: node,
			BuildKeys: []plan.Expr{buildKey},
			ProbeKeys: []plan.Expr{probeKey},
		}
		// Join schema: build columns, then probe columns.
		nb := &binding{}
		nb.names = append(nb.names, rbind.names...)
		nb.names = append(nb.names, bind.names...)
		nb.types = append(nb.types, rbind.types...)
		nb.types = append(nb.types, bind.types...)
		// Rebase probe-side column ordinals.
		bind = nb
	}
	return node, bind, nil
}

func (p *parser) tableRef() (plan.Node, *binding, error) {
	t := p.next()
	if t.kind != tkIdent {
		return nil, nil, fmt.Errorf("sql: expected table name")
	}
	tbl, err := p.cat.Table(strings.ToLower(t.raw))
	if err != nil {
		return nil, nil, err
	}
	alias := tbl.Name
	if p.peek().kind == tkIdent && !reserved(p.peek().text) {
		alias = p.next().raw
	}
	var cols []plan.ColInfo
	b := &binding{}
	for _, c := range tbl.Cols {
		cols = append(cols, plan.ColInfo{Name: c.Name, Type: c.Type})
		b.names = append(b.names, alias+"."+c.Name)
		b.types = append(b.types, c.Type)
	}
	return &plan.Scan{Table: tbl.Name, Cols: cols}, b, nil
}

func reserved(s string) bool {
	switch s {
	case "JOIN", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS", "BY", "SELECT", "FROM":
		return true
	}
	return false
}
