package sql

import (
	"fmt"
	"strconv"
	"strings"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// deferred is an expression resolved against a binding later (the binder
// needs the full FROM clause before names can resolve).
type deferred func(b *binding) (plan.Expr, error)

func (p *parser) parseExprDeferred() (deferred, error) { return p.orExpr() }

func (p *parser) orExpr() (deferred, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lc, rc := l, r
		l = func(b *binding) (plan.Expr, error) {
			le, err := lc(b)
			if err != nil {
				return nil, err
			}
			re, err := rc(b)
			if err != nil {
				return nil, err
			}
			return &plan.Logic{Op: plan.OpOr, L: le, R: re}, nil
		}
	}
	return l, nil
}

func (p *parser) andExpr() (deferred, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		lc, rc := l, r
		l = func(b *binding) (plan.Expr, error) {
			le, err := lc(b)
			if err != nil {
				return nil, err
			}
			re, err := rc(b)
			if err != nil {
				return nil, err
			}
			return &plan.Logic{Op: plan.OpAnd, L: le, R: re}, nil
		}
	}
	return l, nil
}

func (p *parser) notExpr() (deferred, error) {
	if p.accept("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return func(b *binding) (plan.Expr, error) {
			x, err := e(b)
			if err != nil {
				return nil, err
			}
			return &plan.Not{E: x}, nil
		}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]plan.CmpOp{
	"=": plan.CmpEQ, "<>": plan.CmpNE, "!=": plan.CmpNE,
	"<": plan.CmpLT, "<=": plan.CmpLE, ">": plan.CmpGT, ">=": plan.CmpGE,
}

func (p *parser) cmpExpr() (deferred, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tkPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lc, rc := l, r
			return func(b *binding) (plan.Expr, error) {
				le, err := lc(b)
				if err != nil {
					return nil, err
				}
				re, err := rc(b)
				if err != nil {
					return nil, err
				}
				le, re, err = coercePair(le, re)
				if err != nil {
					return nil, err
				}
				return plan.NewCmp(op, le, re)
			}, nil
		}
	}
	if t.kind == tkIdent && t.text == "LIKE" {
		p.next()
		pat := p.next()
		if pat.kind != tkString {
			return nil, fmt.Errorf("sql: LIKE expects a string literal")
		}
		lc := l
		return func(b *binding) (plan.Expr, error) {
			le, err := lc(b)
			if err != nil {
				return nil, err
			}
			if le.Type() != qir.Str {
				return nil, fmt.Errorf("sql: LIKE on %s", le.Type())
			}
			return &plan.Like{E: le, Pattern: pat.raw}, nil
		}, nil
	}
	if t.kind == tkIdent && t.text == "BETWEEN" {
		p.next()
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		lc := l
		return func(b *binding) (plan.Expr, error) {
			le, err := lc(b)
			if err != nil {
				return nil, err
			}
			loe, err := lo(b)
			if err != nil {
				return nil, err
			}
			hie, err := hi(b)
			if err != nil {
				return nil, err
			}
			le2, loe, err := coercePair(le, loe)
			if err != nil {
				return nil, err
			}
			le3, hie, err := coercePair(le2, hie)
			if err != nil {
				return nil, err
			}
			// Re-coerce lo to the final type if the hi coercion widened.
			if loe.Type() != le3.Type() {
				loe, err = coerceTo(loe, le3.Type())
				if err != nil {
					return nil, err
				}
			}
			return &plan.Between{E: le3, Lo: loe, Hi: hie}, nil
		}, nil
	}
	return l, nil
}

var arithOps = map[string]plan.ArithOp{
	"+": plan.OpAdd, "-": plan.OpSub, "*": plan.OpMul, "/": plan.OpDiv, "%": plan.OpMod,
}

func (p *parser) addExpr() (deferred, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tkPunct || t.text != "+" && t.text != "-" {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = binArith(arithOps[t.text], l, r)
	}
}

func (p *parser) mulExpr() (deferred, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tkPunct || t.text != "*" && t.text != "/" && t.text != "%" {
			return l, nil
		}
		p.next()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = binArith(arithOps[t.text], l, r)
	}
}

func binArith(op plan.ArithOp, l, r deferred) deferred {
	return func(b *binding) (plan.Expr, error) {
		le, err := l(b)
		if err != nil {
			return nil, err
		}
		re, err := r(b)
		if err != nil {
			return nil, err
		}
		le, re, err = coercePair(le, re)
		if err != nil {
			return nil, err
		}
		return plan.NewArith(op, le, re)
	}
}

func (p *parser) primary() (deferred, error) {
	t := p.peek()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.Contains(t.raw, ".") {
			parts := strings.SplitN(t.raw, ".", 2)
			whole, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.raw)
			}
			frac := parts[1] + "00"
			cents, err := strconv.ParseInt(frac[:2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.raw)
			}
			v := whole*100 + cents
			return constDeferred(&plan.ConstDec{V: rt.I128FromInt64(v)}), nil
		}
		v, err := strconv.ParseInt(t.raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.raw)
		}
		return constDeferred(&plan.ConstInt{Ty: qir.I64, V: v}), nil
	case t.kind == tkString:
		p.next()
		return constDeferred(&plan.ConstStr{V: t.raw}), nil
	case t.kind == tkPunct && t.text == "(":
		p.next()
		e, err := p.parseExprDeferred()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkPunct && t.text == "-":
		p.next()
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		return func(b *binding) (plan.Expr, error) {
			x, err := e(b)
			if err != nil {
				return nil, err
			}
			var zero plan.Expr
			switch x.Type() {
			case qir.I128:
				zero = &plan.ConstDec{V: rt.I128{}}
			case qir.F64:
				zero = &plan.ConstFloat{V: 0}
			default:
				zero = &plan.ConstInt{Ty: x.Type(), V: 0}
			}
			return plan.NewArith(plan.OpSub, zero, x)
		}, nil
	case t.kind == tkIdent && t.text == "CASE":
		p.next()
		if err := p.expect("WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.parseExprDeferred()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExprDeferred()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ELSE"); err != nil {
			return nil, err
		}
		el, err := p.parseExprDeferred()
		if err != nil {
			return nil, err
		}
		if err := p.expect("END"); err != nil {
			return nil, err
		}
		return func(b *binding) (plan.Expr, error) {
			ce, err := cond(b)
			if err != nil {
				return nil, err
			}
			te, err := th(b)
			if err != nil {
				return nil, err
			}
			ee, err := el(b)
			if err != nil {
				return nil, err
			}
			te, ee, err = coercePair(te, ee)
			if err != nil {
				return nil, err
			}
			return &plan.Case{Cond: ce, Then: te, Else: ee}, nil
		}, nil
	case t.kind == tkIdent:
		p.next()
		name := t.raw
		return func(b *binding) (plan.Expr, error) {
			idx, ty, ok := b.lookup(name)
			if !ok {
				return nil, fmt.Errorf("sql: unknown or ambiguous column %q", name)
			}
			return &plan.Col{Idx: idx, Ty: ty, Name: name}, nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q", t.raw+t.text)
}

func constDeferred(e plan.Expr) deferred {
	return func(b *binding) (plan.Expr, error) { return e, nil }
}

// Type coercion: widen integers toward I128; mix of float and int converts
// the integer side.
func rank(t qir.Type) int {
	switch t {
	case qir.I1:
		return 1
	case qir.I8:
		return 2
	case qir.I16:
		return 3
	case qir.I32:
		return 4
	case qir.I64:
		return 5
	case qir.I128:
		return 6
	}
	return 0
}

func coerceTo(e plan.Expr, t qir.Type) (plan.Expr, error) {
	if e.Type() == t {
		return e, nil
	}
	if e.Type().IsInt() && (t.IsInt() || t == qir.F64) {
		return &plan.Cast{E: e, To: t}, nil
	}
	return nil, fmt.Errorf("sql: cannot convert %s to %s", e.Type(), t)
}

func coercePair(l, r plan.Expr) (plan.Expr, plan.Expr, error) {
	lt, rt_ := l.Type(), r.Type()
	if lt == rt_ {
		return l, r, nil
	}
	switch {
	case lt.IsInt() && rt_.IsInt():
		if rank(lt) < rank(rt_) {
			le, err := coerceTo(l, rt_)
			return le, r, err
		}
		re, err := coerceTo(r, lt)
		return l, re, err
	case lt == qir.F64 && rt_.IsInt():
		re, err := coerceTo(r, qir.F64)
		return l, re, err
	case rt_ == qir.F64 && lt.IsInt():
		le, err := coerceTo(l, qir.F64)
		return le, r, err
	}
	return nil, nil, fmt.Errorf("sql: incompatible types %s and %s", lt, rt_)
}
