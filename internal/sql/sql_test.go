package sql

import (
	"strings"
	"testing"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func testCatalog(t *testing.T) *rt.Catalog {
	t.Helper()
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	cat.CreateTable("t", 4,
		rt.ColSpec{Name: "a", Type: qir.I64},
		rt.ColSpec{Name: "b", Type: qir.I32},
		rt.ColSpec{Name: "s", Type: qir.Str},
		rt.ColSpec{Name: "d", Type: qir.I128},
		rt.ColSpec{Name: "f", Type: qir.F64},
	)
	cat.CreateTable("u", 4,
		rt.ColSpec{Name: "a", Type: qir.I64},
		rt.ColSpec{Name: "x", Type: qir.Str},
	)
	return cat
}

func mustParse(t *testing.T, q string) plan.Node {
	t.Helper()
	n, err := Parse(q, testCatalog(t))
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return n
}

func TestParseShapes(t *testing.T) {
	cases := map[string]func(n plan.Node) bool{
		"SELECT * FROM t": func(n plan.Node) bool {
			_, ok := n.(*plan.Scan)
			return ok
		},
		"SELECT a, b FROM t": func(n plan.Node) bool {
			p, ok := n.(*plan.Project)
			return ok && len(p.Exprs) == 2
		},
		"SELECT a FROM t WHERE b > 3 AND s LIKE 'x%'": func(n plan.Node) bool {
			_, ok := n.(*plan.Project)
			return ok
		},
		"SELECT b, COUNT(*) FROM t GROUP BY b": func(n plan.Node) bool {
			p, ok := n.(*plan.Project)
			if !ok {
				return false
			}
			_, ok = p.Input.(*plan.GroupBy)
			return ok
		},
		"SELECT a FROM t ORDER BY a DESC LIMIT 3": func(n plan.Node) bool {
			l, ok := n.(*plan.Limit)
			if !ok || l.N != 3 {
				return false
			}
			_, ok = l.Input.(*plan.Sort)
			return ok
		},
		"SELECT t.a, x FROM t JOIN u ON t.a = u.a": func(n plan.Node) bool {
			p, ok := n.(*plan.Project)
			if !ok {
				return false
			}
			_, ok = p.Input.(*plan.HashJoin)
			return ok
		},
	}
	for q, check := range cases {
		n := mustParse(t, q)
		if !check(n) {
			t.Errorf("%q: unexpected plan\n%s", q, plan.Dump(n))
		}
	}
}

func TestParseDecimalLiteralScale(t *testing.T) {
	n := mustParse(t, "SELECT a FROM t WHERE d > 12.34")
	// The decimal literal must scale to cents (1234) and coerce col d.
	found := false
	var walk func(plan.Node)
	walk = func(x plan.Node) {
		if s, ok := x.(*plan.Select); ok {
			plan.Walk(s.Pred, func(e plan.Expr) {
				if c, ok := e.(*plan.ConstDec); ok && c.V.Lo == 1234 {
					found = true
				}
			})
		}
		for _, ch := range x.Children() {
			walk(ch)
		}
	}
	walk(n)
	if !found {
		t.Error("decimal literal 12.34 did not scale to 1234 cents")
	}
}

func TestParseCoercion(t *testing.T) {
	// i32 col compared against i64 literal: the column must widen.
	mustParse(t, "SELECT a FROM t WHERE b = 3")
	// i64 col against decimal col via arithmetic.
	mustParse(t, "SELECT d + 1 FROM t")
	// float arithmetic with int literal.
	mustParse(t, "SELECT f * 2 FROM t")
}

func TestParseCase(t *testing.T) {
	mustParse(t, "SELECT CASE WHEN b > 0 THEN a ELSE 0 END FROM t")
	mustParse(t, "SELECT SUM(CASE WHEN s LIKE 'a%' THEN 1 ELSE 0 END) FROM t")
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog(t)
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM nope",
		"SELECT nope FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE s > 3",
		"SELECT a FROM t GROUP BY",
		"SELECT a, COUNT(*) FROM t GROUP BY b ORDER", // a is not a group key / trailing
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t JOIN u ON a",
		"SELECT a FROM t WHERE s LIKE 3",
	} {
		if _, err := Parse(bad, cat); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestParseAmbiguousColumn(t *testing.T) {
	// Column a exists in both t and u: unqualified reference after a join
	// must fail, qualified must work.
	cat := testCatalog(t)
	if _, err := Parse("SELECT a FROM t JOIN u ON t.a = u.a", cat); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := Parse("SELECT t.a FROM t JOIN u ON t.a = u.a", cat); err != nil {
		t.Errorf("qualified column rejected: %v", err)
	}
}

func TestLexStringsAndOperators(t *testing.T) {
	toks, err := lex("SELECT 'a b''x' <= <> != 1.5")
	_ = toks
	// Note: embedded quotes are not supported; the first string ends at
	// the second quote. This just must not crash or mis-tokenize ops.
	if err != nil {
		t.Fatal(err)
	}
	has := func(txt string) bool {
		for _, tk := range toks {
			if tk.text == txt {
				return true
			}
		}
		return false
	}
	for _, op := range []string{"<=", "<>", "!="} {
		if !has(op) {
			t.Errorf("operator %s not lexed", op)
		}
	}
	if !strings.Contains("SELECT", "SELECT") {
		t.Fatal()
	}
}
