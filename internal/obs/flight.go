package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

const (
	// FlightNote is a free-form annotation.
	FlightNote FlightKind = iota
	// FlightSpanBegin marks the opening of a tracer span.
	FlightSpanBegin
	// FlightSpanEnd marks the closing of a tracer span.
	FlightSpanEnd
	// FlightSample is a profiler PC sample (Arg holds the byte offset).
	FlightSample
	// FlightTrap records a VM trap surfacing to the top-level caller
	// (Arg holds the trapping PC).
	FlightTrap
)

func (k FlightKind) String() string {
	switch k {
	case FlightNote:
		return "note"
	case FlightSpanBegin:
		return "begin"
	case FlightSpanEnd:
		return "end"
	case FlightSample:
		return "sample"
	case FlightTrap:
		return "trap"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FlightEvent is one entry in the flight recorder. Events are immutable once
// published; readers always observe either a complete event or none.
type FlightEvent struct {
	Seq  uint64     // global publication order (monotonic)
	When time.Time  // wall-clock time of Record
	Kind FlightKind // what happened
	Name string     // span name, sample function, or trap description
	Arg  int64      // kind-specific payload (PC, offset, count, ...)
}

// Flight is a fixed-size lock-free ring buffer of recent events — the
// always-on "black box" that survives until a trap or an explicit dump asks
// for it. Writers claim a slot with a single atomic add and publish the
// event with an atomic pointer store, so recording costs two atomics and one
// small allocation and never blocks: concurrent writers that lap the ring
// simply overwrite the oldest slots. Snapshot is best-effort consistent — it
// reads each slot once and orders by sequence number.
type Flight struct {
	slots []atomic.Pointer[FlightEvent]
	seq   atomic.Uint64
}

// NewFlight creates a recorder keeping the most recent n events (minimum 16).
func NewFlight(n int) *Flight {
	if n < 16 {
		n = 16
	}
	return &Flight{slots: make([]atomic.Pointer[FlightEvent], n)}
}

// Record publishes one event. Safe for concurrent use from any goroutine.
func (f *Flight) Record(kind FlightKind, name string, arg int64) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	ev := &FlightEvent{Seq: seq, When: time.Now(), Kind: kind, Name: name, Arg: arg}
	f.slots[seq%uint64(len(f.slots))].Store(ev)
}

// Len reports how many events have ever been recorded (not the ring size).
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Snapshot returns the retained events ordered oldest-to-newest. Events
// recorded while the snapshot is being taken may or may not be included.
func (f *Flight) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if ev := f.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	// Insertion sort by Seq: the ring is nearly ordered already (at most one
	// wrap point), so this is effectively linear.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// WriteText dumps the retained events in chronological order, one per line —
// the post-mortem rendering used when a query traps.
func (f *Flight) WriteText(w io.Writer) error {
	evs := f.Snapshot()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no events")
		return err
	}
	base := evs[0].When
	for _, ev := range evs {
		_, err := fmt.Fprintf(w, "%8d %+10.3fms %-7s %s (%d)\n",
			ev.Seq, float64(ev.When.Sub(base).Microseconds())/1000.0,
			ev.Kind.String(), ev.Name, ev.Arg)
		if err != nil {
			return err
		}
	}
	return nil
}

// flightRec is the process-wide always-on recorder. 4096 slots keeps the
// steady-state footprint around a few hundred KiB while retaining enough
// history to reconstruct the tail of a crashing TPC-H query.
var flightRec = NewFlight(4096)

// FlightRec returns the global always-on flight recorder. It is never nil.
func FlightRec() *Flight { return flightRec }
