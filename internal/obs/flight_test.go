package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRecordSnapshot(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 10; i++ {
		f.Record(FlightNote, "ev", int64(i))
	}
	evs := f.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Arg != int64(i) {
			t.Fatalf("event %d out of order: seq=%d arg=%d", i, ev.Seq, ev.Arg)
		}
	}
	if f.Len() != 10 {
		t.Fatalf("Len() = %d, want 10", f.Len())
	}
}

func TestFlightWraps(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 40; i++ {
		f.Record(FlightSample, "s", int64(i))
	}
	evs := f.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("ring retained %d events, want 16", len(evs))
	}
	// Oldest retained event is number 24 (40 recorded, 16 kept).
	if evs[0].Arg != 24 || evs[len(evs)-1].Arg != 39 {
		t.Fatalf("retained window [%d, %d], want [24, 39]",
			evs[0].Arg, evs[len(evs)-1].Arg)
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Record(FlightNote, "g", int64(g))
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 8000 {
		t.Fatalf("Len() = %d, want 8000", f.Len())
	}
	evs := f.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq >= evs[i].Seq {
			t.Fatalf("snapshot not ordered at %d: %d >= %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightWriteText(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightSpanBegin, "compile", 1)
	f.Record(FlightTrap, "oob at q1_p0_main+0x10", 16)
	var sb strings.Builder
	if err := f.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "begin") || !strings.Contains(out, "compile") {
		t.Fatalf("missing span line:\n%s", out)
	}
	if !strings.Contains(out, "trap") || !strings.Contains(out, "oob at q1_p0_main+0x10") {
		t.Fatalf("missing trap line:\n%s", out)
	}

	var empty strings.Builder
	if err := NewFlight(16).WriteText(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Fatalf("empty dump = %q", empty.String())
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(FlightNote, "x", 0) // must not panic
	if f.Len() != 0 || f.Snapshot() != nil {
		t.Fatal("nil Flight should be inert")
	}
}

func TestTracerFeedsFlight(t *testing.T) {
	before := FlightRec().Len()
	tr := New(Options{})
	sp := tr.Begin("flight-hookup-span")
	sp.End()
	if FlightRec().Len() < before+2 {
		t.Fatalf("global flight recorder did not observe span begin+end (len %d -> %d)",
			before, FlightRec().Len())
	}
	found := false
	for _, ev := range FlightRec().Snapshot() {
		if ev.Kind == FlightSpanEnd && ev.Name == "flight-hookup-span" {
			found = true
		}
	}
	if !found {
		t.Fatal("span end event not retained in global flight recorder")
	}
}
