// Package obs is the compile-time observability layer: nested trace spans
// with per-function and per-pass attribution, concurrent-safe counters,
// optional allocation accounting, and exporters (Chrome trace-event JSON for
// Perfetto, Prometheus text exposition, and a stable JSON report schema).
//
// The package is designed around a nil-is-disabled convention: a nil *Tracer
// is the disabled state, every method is nil-safe, and the disabled span
// fast path performs no heap allocation. Call sites therefore never branch
// on an enabled flag; they simply thread the (possibly nil) tracer through.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Options configures a Tracer.
type Options struct {
	// Allocs enables per-span heap-allocation deltas (bytes and object
	// counts) captured with runtime.ReadMemStats at span begin/end. The
	// deltas are only meaningful for single-goroutine spans and the
	// capture is expensive; reserve it for dedicated tracing runs.
	Allocs bool
}

// Span is one trace span. Dur is zero while the span is open. Spans form a
// tree through Parent indices into the tracer's span slice.
type Span struct {
	Name   string
	Cat    string // category: "phase", "pass", "func", "group", ...
	Parent int32  // index of the enclosing span; -1 for roots
	Depth  int32
	// Tid identifies the logical thread (worker) the span ran on: 0/1 is
	// the main compilation goroutine; spans merged from forked per-worker
	// tracers carry the worker's id (see Adopt). Exporters render it as
	// the Chrome trace thread id.
	Tid   int32
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration
	// AllocBytes/AllocObjs hold the heap-allocation delta over the span
	// (self plus children) when Options.Allocs is set.
	AllocBytes int64
	AllocObjs  int64
}

// Tracer collects spans and counters for one compilation or tool run.
// Counter and span recording are safe for concurrent use. The open-span
// stack is NOT: it belongs to one goroutine at a time. Ownership is claimed
// by the first Begin on an empty stack and released when the stack empties;
// a Begin or End from a different goroutine while spans are open panics
// (before this check, such misuse silently corrupted parent attribution).
// Concurrent compilation therefore gives each worker its own tracer via
// Fork and merges the span forests with Adopt.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time
	spans    []Span
	stack    []int32
	counters map[string]int64
	allocs   bool
	owner    int64 // goroutine id owning the open-span stack; 0 when empty
}

// New creates an enabled tracer. The zero moment of all span timestamps is
// the call to New.
func New(opts Options) *Tracer {
	return &Tracer{
		epoch:    time.Now(),
		counters: map[string]int64{},
		allocs:   opts.Allocs,
	}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// AllocsEnabled reports whether per-span allocation deltas are captured.
func (t *Tracer) AllocsEnabled() bool { return t != nil && t.allocs }

// ReadAllocs returns the cumulative heap allocation totals of the Go
// runtime (bytes, objects). Deltas of successive calls give the allocation
// volume of the enclosed code on a single-goroutine path.
func ReadAllocs() (bytes, objs int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc), int64(ms.Mallocs)
}

// SpanRef is a handle to an open span. The zero value (returned by a nil
// tracer) is inert: End is a no-op and performs no allocation.
type SpanRef struct {
	t  *Tracer
	id int32
}

// Begin opens a span in the default "phase" category.
func (t *Tracer) Begin(name string) SpanRef { return t.BeginCat(name, "phase") }

// BeginCat opens a span named name in category cat, nested under the
// innermost open span. Nil-safe.
func (t *Tracer) BeginCat(name, cat string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	var ab, ao int64
	if t.allocs {
		ab, ao = ReadAllocs()
	}
	t.mu.Lock()
	t.claimStack("Begin")
	id := int32(len(t.spans))
	parent, depth := int32(-1), int32(0)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
		depth = t.spans[parent].Depth + 1
	}
	t.spans = append(t.spans, Span{
		Name: name, Cat: cat, Parent: parent, Depth: depth,
		Start: time.Since(t.epoch), AllocBytes: ab, AllocObjs: ao,
	})
	t.stack = append(t.stack, id)
	t.mu.Unlock()
	flightRec.Record(FlightSpanBegin, name, int64(id))
	return SpanRef{t: t, id: id}
}

// claimStack enforces single-goroutine ownership of the open-span stack.
// Caller holds t.mu; on misuse the lock is released before panicking so a
// recovering caller (e.g. a test) does not deadlock the tracer.
func (t *Tracer) claimStack(op string) {
	g := goid()
	if len(t.stack) == 0 {
		t.owner = g
		return
	}
	if t.owner != g {
		t.mu.Unlock()
		panic("obs: Tracer span " + op + " from goroutine not owning the open-span stack; use Fork/Adopt for concurrent tracing")
	}
}

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). Only taken on traced span paths.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// End closes the span. Spans may end out of order (interleaved phases):
// only this span is removed from the open stack, so an outer span ending
// before an inner one does not corrupt attribution of the survivor.
func (s SpanRef) End() {
	t := s.t
	if t == nil {
		return
	}
	var ab, ao int64
	if t.allocs {
		ab, ao = ReadAllocs()
	}
	t.mu.Lock()
	t.claimStack("End")
	sp := &t.spans[s.id]
	sp.Dur = time.Since(t.epoch) - sp.Start
	if t.allocs {
		sp.AllocBytes = ab - sp.AllocBytes
		sp.AllocObjs = ao - sp.AllocObjs
	}
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s.id {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	if len(t.stack) == 0 {
		t.owner = 0
	}
	name, dur := sp.Name, sp.Dur
	t.mu.Unlock()
	flightRec.Record(FlightSpanEnd, name, dur.Microseconds())
}

// Fork returns a fresh tracer for a worker goroutine that shares this
// tracer's epoch (so span timestamps of parent and children line up) and
// allocation setting but has its own span forest, open stack, and counters.
// Merge it back with Adopt once the worker is done.
func (t *Tracer) Fork() *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Tracer{epoch: t.epoch, counters: map[string]int64{}, allocs: t.allocs}
}

// Adopt merges a forked tracer's spans and counters into t. The child's
// root spans are re-parented under t's innermost open span, depths shift
// accordingly, and every adopted span without a thread id is tagged with
// tid (its worker id, for per-thread rendering in Chrome traces). The
// child must be quiescent: no goroutine may still be recording into it.
func (t *Tracer) Adopt(child *Tracer, tid int32) {
	if t == nil || child == nil {
		return
	}
	child.mu.Lock()
	spans := append([]Span(nil), child.spans...)
	counters := make(map[string]int64, len(child.counters))
	for k, v := range child.counters {
		counters[k] = v
	}
	child.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	base := int32(len(t.spans))
	parent, pdepth := int32(-1), int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
		pdepth = t.spans[parent].Depth
	}
	for _, sp := range spans {
		if sp.Parent < 0 {
			sp.Parent = parent
		} else {
			sp.Parent += base
		}
		sp.Depth += pdepth + 1
		if sp.Tid == 0 {
			sp.Tid = tid
		}
		t.spans = append(t.spans, sp)
	}
	for k, v := range counters {
		t.counters[k] += v
	}
}

// Add accumulates delta into the named tracer counter. Nil-safe and safe
// for concurrent use.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Trace is an immutable snapshot of a tracer, suitable for export. Process
// names the traced entity (typically the engine).
type Trace struct {
	Process  string
	Spans    []Span
	Counters map[string]int64
}

// Snapshot copies the tracer state. Safe on a nil tracer (returns an empty
// trace).
func (t *Tracer) Snapshot(process string) *Trace {
	tr := &Trace{Process: process, Counters: map[string]int64{}}
	if t == nil {
		return tr
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr.Spans = append([]Span(nil), t.spans...)
	for k, v := range t.counters {
		tr.Counters[k] = v
	}
	return tr
}

// TotalByName sums span durations grouped by span name (for flat rollups
// of a snapshot).
func (tr *Trace) TotalByName() map[string]time.Duration {
	out := map[string]time.Duration{}
	for i := range tr.Spans {
		out[tr.Spans[i].Name] += tr.Spans[i].Dur
	}
	return out
}
