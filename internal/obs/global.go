package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a process-wide, concurrent-safe event counter. Counters live
// in hot paths (IR slab growth, B-tree inserts), so the increment is a
// single atomic add with no map lookup; the registry is only walked when a
// report is exported.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add accumulates n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

var (
	regMu    sync.Mutex
	registry []*Counter
)

// NewCounter registers (or retrieves) the process-wide counter with the
// given name. Intended for package-level variables; registration is
// idempotent by name.
func NewCounter(name string) *Counter {
	regMu.Lock()
	defer regMu.Unlock()
	for _, c := range registry {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	registry = append(registry, c)
	return c
}

// GlobalCounters snapshots all registered counters with non-zero values,
// keyed by name.
func GlobalCounters() map[string]int64 {
	regMu.Lock()
	defer regMu.Unlock()
	out := map[string]int64{}
	for _, c := range registry {
		if v := c.v.Load(); v != 0 {
			out[c.name] = v
		}
	}
	return out
}

// GlobalCounterNames returns registered counter names in sorted order
// (including zero-valued ones).
func GlobalCounterNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for _, c := range registry {
		names = append(names, c.name)
	}
	sort.Strings(names)
	return names
}

// Vector is a fixed-size set of concurrent counters indexed by a small
// integer id — e.g. per-function call counts feeding tier-promotion
// decisions in the adaptive back-end.
type Vector struct {
	name string
	v    []atomic.Int64
}

// NewVector creates a vector of n counters. Vectors are per-use (sized to
// one module) and are not registered globally.
func NewVector(name string, n int) *Vector {
	return &Vector{name: name, v: make([]atomic.Int64, n)}
}

// Inc increments counter i and returns the new value.
func (v *Vector) Inc(i int) int64 { return v.v[i].Add(1) }

// Add accumulates d into counter i and returns the new value — used for
// weighted signals such as executed-instruction hotness, where one call
// contributes many units.
func (v *Vector) Add(i int, d int64) int64 { return v.v[i].Add(d) }

// Load returns counter i.
func (v *Vector) Load(i int) int64 { return v.v[i].Load() }

// Len returns the number of counters.
func (v *Vector) Len() int { return len(v.v) }

// Name returns the vector's name.
func (v *Vector) Name() string { return v.name }

// Total sums all counters.
func (v *Vector) Total() int64 {
	var t int64
	for i := range v.v {
		t += v.v[i].Load()
	}
	return t
}
