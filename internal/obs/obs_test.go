package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New(Options{})
	a := tr.Begin("Compile")
	b := tr.BeginCat("ISel", "phase")
	c := tr.BeginCat("Encoder", "pass")
	c.End()
	b.End()
	d := tr.Begin("RegAlloc")
	d.End()
	a.End()

	snap := tr.Snapshot("test")
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	want := []struct {
		name   string
		parent int32
		depth  int32
	}{
		{"Compile", -1, 0},
		{"ISel", 0, 1},
		{"Encoder", 1, 2},
		{"RegAlloc", 0, 1},
	}
	for i, w := range want {
		sp := snap.Spans[i]
		if sp.Name != w.name || sp.Parent != w.parent || sp.Depth != w.depth {
			t.Errorf("span %d = {%s parent=%d depth=%d}, want {%s parent=%d depth=%d}",
				i, sp.Name, sp.Parent, sp.Depth, w.name, w.parent, w.depth)
		}
		if sp.Dur < 0 {
			t.Errorf("span %d has negative duration", i)
		}
	}
	// The root must cover its children.
	if snap.Spans[0].Dur < snap.Spans[1].Dur+snap.Spans[3].Dur {
		t.Errorf("root shorter than children: %v < %v + %v",
			snap.Spans[0].Dur, snap.Spans[1].Dur, snap.Spans[3].Dur)
	}
}

func TestInterleavedSpans(t *testing.T) {
	// Out-of-order close (A begins, B begins, A ends, B ends) must not
	// corrupt the open stack: a span after both closes is a root again.
	tr := New(Options{})
	a := tr.Begin("A")
	b := tr.Begin("B")
	a.End()
	b.End()
	c := tr.Begin("C")
	c.End()
	snap := tr.Snapshot("test")
	if snap.Spans[2].Parent != -1 || snap.Spans[2].Depth != 0 {
		t.Errorf("span C = parent=%d depth=%d, want root", snap.Spans[2].Parent, snap.Spans[2].Depth)
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("x") // must not panic
	sp.End()
	tr.Add("c", 1)
	snap := tr.Snapshot("off")
	if len(snap.Spans) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("nil tracer recorded state: %+v", snap)
	}
}

func TestDisabledSpanZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.BeginCat("phase", "phase")
		tr.Add("counter", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

func TestConcurrentCounters(t *testing.T) {
	tr := New(Options{})
	g := NewCounter("obs_test.concurrent")
	start := g.Load()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Add("events", 1)
				g.Inc()
			}
		}()
	}
	wg.Wait()
	if got := tr.Snapshot("t").Counters["events"]; got != workers*per {
		t.Errorf("tracer counter = %d, want %d", got, workers*per)
	}
	if got := g.Load() - start; got != workers*per {
		t.Errorf("global counter = %d, want %d", got, workers*per)
	}
}

func TestCounterRegistryIdempotent(t *testing.T) {
	a := NewCounter("obs_test.idem")
	b := NewCounter("obs_test.idem")
	if a != b {
		t.Fatal("NewCounter returned distinct counters for one name")
	}
	a.Add(3)
	if GlobalCounters()["obs_test.idem"] < 3 {
		t.Fatal("global snapshot missing counter")
	}
}

func TestVector(t *testing.T) {
	v := NewVector("calls", 3)
	if v.Inc(1) != 1 || v.Inc(1) != 2 {
		t.Fatal("Inc return value wrong")
	}
	v.Inc(0)
	if v.Load(1) != 2 || v.Load(0) != 1 || v.Load(2) != 0 {
		t.Fatal("Load values wrong")
	}
	if v.Total() != 3 {
		t.Fatalf("Total = %d, want 3", v.Total())
	}
}

func TestAllocTracking(t *testing.T) {
	tr := New(Options{Allocs: true})
	sp := tr.Begin("alloc-heavy")
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	sp.End()
	snap := tr.Snapshot("t")
	if snap.Spans[0].AllocBytes < 64*4096 {
		t.Errorf("alloc bytes = %d, want >= %d", snap.Spans[0].AllocBytes, 64*4096)
	}
	if snap.Spans[0].AllocObjs < 64 {
		t.Errorf("alloc objs = %d, want >= 64", snap.Spans[0].AllocObjs)
	}
}

// TestChromeTraceGolden pins the Chrome trace-event output for a fixed
// snapshot, so the format stays loadable by Perfetto across refactors.
func TestChromeTraceGolden(t *testing.T) {
	tr := &Trace{
		Process: "LLVM cheap",
		Spans: []Span{
			{Name: "func:q1_scan", Cat: "func", Parent: -1, Depth: 0, Start: 0, Dur: 5000 * time.Nanosecond},
			{Name: "ISel", Cat: "phase", Parent: 0, Depth: 1, Start: 1000 * time.Nanosecond, Dur: 2500 * time.Nanosecond,
				AllocBytes: 2048, AllocObjs: 12},
		},
		Counters: map[string]int64{"dag_nodes": 42, "bundles": 7},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "LLVM cheap"
   }
  },
  {
   "name": "func:q1_scan",
   "cat": "func",
   "ph": "X",
   "ts": 0,
   "dur": 5,
   "pid": 1,
   "tid": 1
  },
  {
   "name": "ISel",
   "cat": "phase",
   "ph": "X",
   "ts": 1,
   "dur": 2.5,
   "pid": 1,
   "tid": 1,
   "args": {
    "alloc_bytes": 2048,
    "alloc_objs": 12
   }
  },
  {
   "name": "bundles",
   "ph": "C",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "value": 7
   }
  },
  {
   "name": "dag_nodes",
   "ph": "C",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "value": 42
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusExport(t *testing.T) {
	tr := &Trace{
		Process: "Cranelift",
		Spans: []Span{
			{Name: "ISel", Dur: 1500 * time.Microsecond},
			{Name: "ISel", Dur: 500 * time.Microsecond},
			{Name: "Emit", Dur: 250 * time.Microsecond, AllocBytes: 100, AllocObjs: 3},
		},
		Counters: map[string]int64{"spilled": 2},
	}
	var buf bytes.Buffer
	if err := tr.WritePrometheus(&buf, map[string]string{"arch": "vx64"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`qcc_span_seconds_total{arch="vx64",process="Cranelift",span="ISel"} 0.002`,
		`qcc_span_alloc_bytes_total{arch="vx64",process="Cranelift",span="Emit"} 100`,
		`qcc_events_total{arch="vx64",process="Cranelift",event="spilled"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\ngot:\n%s", want, out)
		}
	}
}

func TestReportWrite(t *testing.T) {
	r := &Report{
		Arch: "vx64",
		Engines: []EngineReport{{
			Engine: "DirectEmit", Funcs: 3, CodeBytes: 1024, CompileNS: 50000,
			Phases: []PhaseReport{{Name: "Codegen", NS: 40000}},
		}},
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"schema": "qcc.obs.report/v2"`) {
		t.Errorf("schema tag missing:\n%s", out)
	}
	if !strings.Contains(out, `"code_bytes": 1024`) {
		t.Errorf("code_bytes missing:\n%s", out)
	}
}

func TestTotalByName(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Name: "A", Dur: time.Millisecond},
		{Name: "A", Dur: time.Millisecond},
		{Name: "B", Dur: time.Second},
	}}
	tot := tr.TotalByName()
	if tot["A"] != 2*time.Millisecond || tot["B"] != time.Second {
		t.Fatalf("rollup wrong: %v", tot)
	}
}
