package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// --------------------------------------------------------------------------
// Chrome trace-event JSON (chrome://tracing, Perfetto).
// --------------------------------------------------------------------------

// chromeEvent is one entry of the trace-event format. Complete events
// ("ph":"X") carry ts+dur; metadata events ("ph":"M") name processes;
// counter events ("ph":"C") render as counter tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(d int64) float64 { return float64(d) / 1e3 } // ns -> µs

// WriteChrome writes one or more trace snapshots as a Chrome trace-event
// JSON document loadable in Perfetto or chrome://tracing. Each trace
// becomes its own process (pid = index+1) named after Trace.Process, so a
// multi-engine capture shows the engines side by side.
func WriteChrome(w io.Writer, traces ...*Trace) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, tr := range traces {
		pid := i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 1,
			Args: map[string]any{"name": tr.Process},
		})
		for _, sp := range tr.Spans {
			dur := usOf(int64(sp.Dur))
			tid := int(sp.Tid)
			if tid == 0 {
				tid = 1 // main compilation thread
			}
			ev := chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X",
				Ts: usOf(int64(sp.Start)), Dur: &dur, Pid: pid, Tid: tid,
			}
			if sp.AllocBytes != 0 || sp.AllocObjs != 0 {
				ev.Args = map[string]any{
					"alloc_bytes": sp.AllocBytes,
					"alloc_objs":  sp.AllocObjs,
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
		names := make([]string, 0, len(tr.Counters))
		for k := range tr.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: k, Ph: "C", Ts: 0, Pid: pid, Tid: 1,
				Args: map[string]any{"value": tr.Counters[k]},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// --------------------------------------------------------------------------
// Prometheus text exposition.
// --------------------------------------------------------------------------

// promSanitize maps an arbitrary counter/span name onto the Prometheus
// label-value safe subset (we keep names as label values, not metric
// names, so only quoting matters).
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func promLabels(base map[string]string, extra ...string) string {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, `%s="%s"`, k, promEscape(v))
	}
	for _, k := range keys {
		emit(k, base[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: per-span-name duration totals, per-span-name allocation totals
// (when captured), and the trace counters. labels are attached to every
// sample (e.g. engine, arch, query).
func (tr *Trace) WritePrometheus(w io.Writer, labels map[string]string) error {
	if labels == nil {
		labels = map[string]string{}
	}
	if tr.Process != "" {
		labels["process"] = tr.Process
	}

	type rollup struct {
		ns    int64
		bytes int64
		objs  int64
	}
	byName := map[string]*rollup{}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		r := byName[sp.Name]
		if r == nil {
			r = &rollup{}
			byName[sp.Name] = r
		}
		r.ns += int64(sp.Dur)
		r.bytes += sp.AllocBytes
		r.objs += sp.AllocObjs
	}
	names := make([]string, 0, len(byName))
	for k := range byName {
		names = append(names, k)
	}
	sort.Strings(names)

	if len(names) > 0 {
		fmt.Fprintln(w, "# HELP qcc_span_seconds_total Cumulative span duration by span name.")
		fmt.Fprintln(w, "# TYPE qcc_span_seconds_total counter")
		for _, n := range names {
			fmt.Fprintf(w, "qcc_span_seconds_total%s %g\n", promLabels(labels, "span", n), float64(byName[n].ns)/1e9)
		}
		hasAllocs := false
		for _, n := range names {
			if byName[n].bytes != 0 || byName[n].objs != 0 {
				hasAllocs = true
				break
			}
		}
		if hasAllocs {
			fmt.Fprintln(w, "# HELP qcc_span_alloc_bytes_total Heap bytes allocated within spans, by span name.")
			fmt.Fprintln(w, "# TYPE qcc_span_alloc_bytes_total counter")
			for _, n := range names {
				fmt.Fprintf(w, "qcc_span_alloc_bytes_total%s %d\n", promLabels(labels, "span", n), byName[n].bytes)
			}
			fmt.Fprintln(w, "# HELP qcc_span_alloc_objects_total Heap objects allocated within spans, by span name.")
			fmt.Fprintln(w, "# TYPE qcc_span_alloc_objects_total counter")
			for _, n := range names {
				fmt.Fprintf(w, "qcc_span_alloc_objects_total%s %d\n", promLabels(labels, "span", n), byName[n].objs)
			}
		}
	}

	if len(tr.Counters) > 0 {
		cnames := make([]string, 0, len(tr.Counters))
		for k := range tr.Counters {
			cnames = append(cnames, k)
		}
		sort.Strings(cnames)
		fmt.Fprintln(w, "# HELP qcc_events_total Back-end event counters.")
		fmt.Fprintln(w, "# TYPE qcc_events_total counter")
		for _, n := range cnames {
			fmt.Fprintf(w, "qcc_events_total%s %d\n", promLabels(labels, "event", n), tr.Counters[n])
		}
	}
	return nil
}

// WriteGlobalPrometheus writes the process-wide counter registry (code-cache
// hits/misses from pcc, IR slab growth, tier promotions, ...) in the
// Prometheus text exposition format. Trace-scoped WritePrometheus only sees
// the tracer's own counters, so a scrape that wants the pcc cache outcome
// must include this section too; labels are attached to every sample.
func WriteGlobalPrometheus(w io.Writer, labels map[string]string) error {
	if labels == nil {
		labels = map[string]string{}
	}
	counters := GlobalCounters()
	if len(counters) == 0 {
		return nil
	}
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "# HELP qcc_global_events_total Process-wide event counters (code cache, IR, tiering).")
	fmt.Fprintln(w, "# TYPE qcc_global_events_total counter")
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "qcc_global_events_total%s %d\n", promLabels(labels, "event", n), counters[n]); err != nil {
			return err
		}
	}
	return nil
}

// --------------------------------------------------------------------------
// Stable JSON report schema ("qcc.obs.report/v2").
// --------------------------------------------------------------------------

// Schema identifies the report format. Consumers (CI perf-trajectory
// archiving, cmd/qtrace) key on this string; additive changes keep the
// version, breaking changes bump it. v2: global_counters gained the batch
// executor's rt_batch_kernel_calls/rt_batch_rows and exec_morsels/
// exec_workers, and suite runs honor execution settings (-exec-jobs,
// -batch), so same-schema reports are only comparable at equal settings.
const Schema = "qcc.obs.report/v2"

// Report is the machine-readable benchmark/observability report emitted by
// `qbench -json` and `qtrace -format json`.
type Report struct {
	Schema   string  `json:"schema"`
	Arch     string  `json:"arch,omitempty"`
	Workload string  `json:"workload,omitempty"`
	SF       float64 `json:"sf,omitempty"`
	// Jobs is the compilation worker count the report was produced with
	// (1 = sequential, matching reports from before the field existed).
	Jobs    int              `json:"jobs,omitempty"`
	Engines []EngineReport   `json:"engines"`
	Global  map[string]int64 `json:"global_counters,omitempty"`
}

// EngineReport is one engine's aggregate over the measured suite.
type EngineReport struct {
	Engine     string           `json:"engine"`
	Funcs      int              `json:"funcs"`
	CodeBytes  int              `json:"code_bytes"`
	CompileNS  int64            `json:"compile_ns"`
	ExecNS     int64            `json:"exec_ns,omitempty"`
	Phases     []PhaseReport    `json:"phases"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	AllocBytes int64            `json:"alloc_bytes,omitempty"`
	AllocObjs  int64            `json:"alloc_objs,omitempty"`
	// CacheHits/CacheMisses are the content-addressed code-cache lookup
	// outcomes over the suite (both zero when no cache is configured).
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	Queries     []QueryReport `json:"queries,omitempty"`
}

// PhaseReport is one compile phase total.
type PhaseReport struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// QueryReport is one query's compile/execute measurement, including the
// VM's architecture-neutral runtime counters.
type QueryReport struct {
	Name      string `json:"name"`
	CompileNS int64  `json:"compile_ns"`
	ExecNS    int64  `json:"exec_ns"`
	Rows      int    `json:"rows"`
	Instrs    int64  `json:"vm_instrs"`
	Branches  int64  `json:"vm_branches"`
	MemOps    int64  `json:"vm_mem_ops"`
	// FuseInstrs/FuseMicroOps record the vm's superinstruction fusion
	// outcome for the query's compiled module (decoded instructions vs
	// primary-path micro-ops). Both are omitted for the interpreter and
	// under -nofuse; the fusion rate is fuse_micro_ops/fuse_instrs.
	FuseInstrs   int64 `json:"fuse_instrs,omitempty"`
	FuseMicroOps int64 `json:"fuse_micro_ops,omitempty"`
	// StaticMemOps/ChecksEliminated report the compile-time
	// check-elimination outcome for the query's QIR; LintFindings counts
	// static-analysis diagnostics (expected 0 for generated code) and
	// AnalysisNS the analysis+rewrite wall time.
	StaticMemOps     int   `json:"static_mem_ops,omitempty"`
	ChecksEliminated int   `json:"checks_eliminated,omitempty"`
	LintFindings     int   `json:"lint_findings,omitempty"`
	AnalysisNS       int64 `json:"analysis_ns,omitempty"`
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
