package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestForkAdopt checks the concurrent-tracing protocol: a worker records
// into a forked tracer, and Adopt splices its span forest under the parent
// tracer's innermost open span with depths shifted and the worker tid
// stamped on.
func TestForkAdopt(t *testing.T) {
	tr := New(Options{})
	root := tr.Begin("root")

	child := tr.Fork()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := child.BeginCat("work", "group")
		inner := child.Begin("inner")
		inner.End()
		w.End()
		child.Add("widgets", 3)
	}()
	<-done

	tr.Adopt(child, 7)
	root.End()

	snap := tr.Snapshot("test")
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(snap.Spans), snap.Spans)
	}
	rootSpan, work, inner := snap.Spans[0], snap.Spans[1], snap.Spans[2]
	if rootSpan.Name != "root" || rootSpan.Parent != -1 || rootSpan.Depth != 0 {
		t.Errorf("root span malformed: %+v", rootSpan)
	}
	if work.Name != "work" || work.Parent != 0 || work.Depth != 1 || work.Tid != 7 {
		t.Errorf("adopted root span not re-parented under open span: %+v", work)
	}
	if inner.Name != "inner" || inner.Parent != 1 || inner.Depth != 2 || inner.Tid != 7 {
		t.Errorf("adopted nested span malformed: %+v", inner)
	}
	if snap.Counters["widgets"] != 3 {
		t.Errorf("forked counters not merged: %v", snap.Counters)
	}
}

// TestForkAdoptNoOpenSpan checks that adopting with no span open keeps the
// child roots as roots.
func TestForkAdoptNoOpenSpan(t *testing.T) {
	tr := New(Options{})
	child := tr.Fork()
	child.Begin("a").End()
	tr.Adopt(child, 2)
	snap := tr.Snapshot("test")
	if len(snap.Spans) != 1 || snap.Spans[0].Parent != -1 || snap.Spans[0].Depth != 0 || snap.Spans[0].Tid != 2 {
		t.Fatalf("adopted span should stay a root: %+v", snap.Spans)
	}
}

// TestCrossGoroutineBeginPanics: opening a span from a goroutine that does
// not own the open-span stack must panic (previously it silently corrupted
// parent attribution).
func TestCrossGoroutineBeginPanics(t *testing.T) {
	tr := New(Options{})
	sp := tr.Begin("outer")
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		tr.Begin("bad")
	}()
	r := <-got
	if r == nil {
		t.Fatal("Begin from a non-owning goroutine did not panic")
	}
	if !strings.Contains(r.(string), "Fork/Adopt") {
		t.Fatalf("panic message should point at Fork/Adopt: %v", r)
	}
	// The tracer must stay usable by its owner after a recovered misuse.
	sp.End()
	if n := len(tr.Snapshot("t").Spans); n != 1 {
		t.Fatalf("got %d spans after recovery, want 1", n)
	}
}

// TestCrossGoroutineEndPanics: closing a span from the wrong goroutine must
// panic as well.
func TestCrossGoroutineEndPanics(t *testing.T) {
	tr := New(Options{})
	sp := tr.Begin("outer")
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		sp.End()
	}()
	if r := <-got; r == nil {
		t.Fatal("End from a non-owning goroutine did not panic")
	}
	sp.End()
}

// TestOwnershipReleases: once the stack empties, another goroutine may
// claim the tracer (sequential handoff needs no Fork).
func TestOwnershipReleases(t *testing.T) {
	tr := New(Options{})
	tr.Begin("first").End()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		tr.Begin("second").End()
	}()
	if r := <-done; r != nil {
		t.Fatalf("handoff after stack emptied should not panic: %v", r)
	}
	if n := len(tr.Snapshot("t").Spans); n != 2 {
		t.Fatalf("got %d spans, want 2", n)
	}
}

// TestConcurrentCountersAndForks: counters and Fork/Adopt are safe under
// the race detector with many workers.
func TestConcurrentCountersAndForks(t *testing.T) {
	tr := New(Options{})
	root := tr.Begin("root")
	const workers = 8
	children := make([]*Tracer, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		children[i] = tr.Fork()
		wg.Add(1)
		go func(c *Tracer) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := c.Begin("unit")
				c.Add("n", 1)
				tr.Add("shared", 1) // counter API is concurrency-safe on the parent too
				sp.End()
			}
		}(children[i])
	}
	wg.Wait()
	for i, c := range children {
		tr.Adopt(c, int32(i+2))
	}
	root.End()
	snap := tr.Snapshot("t")
	if want := 1 + workers*100; len(snap.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), want)
	}
	if snap.Counters["n"] != workers*100 || snap.Counters["shared"] != workers*100 {
		t.Fatalf("counters lost updates: %v", snap.Counters)
	}
}
