package mcv

import (
	"fmt"
	"sort"
	"strings"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// FuncSummary is the structural fingerprint of one compiled function used
// by the cross-backend differential check: which runtime functions it can
// call and which trap conditions it can raise. Back-ends compiling the same
// QIR function should agree on both sets regardless of how they allocate
// registers or schedule code.
type FuncSummary struct {
	Name string `json:"name"`
	// Calls is the sorted set of runtime callees (by name; "<indirect>"
	// for indirect calls).
	Calls []string `json:"calls,omitempty"`
	// Traps is the sorted set of trap codes the function can raise.
	Traps []string `json:"traps,omitempty"`
	// Unchecked counts unchecked memory instructions in the function body.
	// It is excluded from the cross-backend Diff (back-ends legitimately
	// duplicate or fold accesses) and consumed by UncheckedConservation.
	Unchecked int `json:"unchecked,omitempty"`
}

// Summarize fingerprints every function of a decoded program. Runtime calls
// routed through local stubs (a call whose target lies outside every
// function range and lands on a CallRT) are resolved to the runtime name.
func Summarize(prog *vt.Program, funcs []vm.UnwindRange, rtNames []string) []FuncSummary {
	inFunc := func(off int64) bool {
		for i := range funcs {
			if off >= int64(funcs[i].Start) && off < int64(funcs[i].End) {
				return true
			}
		}
		return false
	}
	rtName := func(id int64) string {
		if id >= 0 && id < int64(len(rtNames)) {
			return rtNames[id]
		}
		return fmt.Sprintf("<rt:%d>", id)
	}
	out := make([]FuncSummary, 0, len(funcs))
	for i := range funcs {
		fn := &funcs[i]
		calls := map[string]bool{}
		traps := map[string]bool{}
		if fn.Start < 0 || int(fn.Start) >= len(prog.Index) || prog.Index[fn.Start] < 0 {
			out = append(out, FuncSummary{Name: fn.Name})
			continue
		}
		unchecked := 0
		for k := prog.Index[fn.Start]; int(k) < len(prog.Instrs) && prog.Offsets[k] < fn.End; k++ {
			in := prog.Instrs[k]
			if in.Op.UncheckedMem() {
				unchecked++
			}
			switch in.Op {
			case vt.CallRT:
				calls[rtName(in.Imm)] = true
			case vt.Call:
				// Calls into another function range are local; calls to
				// code outside every range are runtime stubs.
				if inFunc(in.Imm) {
					continue
				}
				if t := in.Imm; t >= 0 && t < int64(len(prog.Index)) {
					if ti := prog.Index[t]; ti >= 0 && prog.Instrs[ti].Op == vt.CallRT {
						calls[rtName(prog.Instrs[ti].Imm)] = true
						continue
					}
				}
				calls["<stub>"] = true
			case vt.CallInd:
				calls["<indirect>"] = true
			case vt.Trap, vt.TrapNZ:
				traps[vt.TrapCode(in.Imm).String()] = true
			}
		}
		out = append(out, FuncSummary{Name: fn.Name, Calls: sortedKeys(calls), Traps: sortedKeys(traps), Unchecked: unchecked})
	}
	return out
}

// UncheckedConservation cross-checks the static analyzer's output against
// the code a back-end actually emitted: a module whose QIR carries no
// MemUnchecked marks must compile to a program with no unchecked memory
// instructions (nothing may invent an unchecked access), and a module with
// marks must retain at least one (lowering may fold or duplicate accesses,
// but must not silently drop the whole elimination). qirUnchecked is the
// module's count of marked QIR loads/stores.
func UncheckedConservation(engine string, qirUnchecked int, sums []FuncSummary) []Diag {
	total := 0
	var diags []Diag
	for _, s := range sums {
		total += s.Unchecked
		if qirUnchecked == 0 && s.Unchecked > 0 {
			diags = append(diags, Diag{Func: s.Name, Block: -1, Inst: -1, Off: -1,
				Msg: fmt.Sprintf("%s emitted %d unchecked memory ops but the QIR module has no MemUnchecked marks",
					engine, s.Unchecked)})
		}
	}
	if qirUnchecked > 0 && total == 0 {
		diags = append(diags, Diag{Func: "<module>", Block: -1, Inst: -1, Off: -1,
			Msg: fmt.Sprintf("%s dropped all %d MemUnchecked marks: no unchecked memory op survived lowering",
				engine, qirUnchecked)})
	}
	return diags
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CanonicalizeFailures folds the failure idioms back-ends lower differently
// into one canonical form, so Diff compares failure semantics rather than
// lowering choices: a `throw_<code>` runtime call is a no-return helper that
// back-ends pair with an "unreachable" trap, where others trap with <code>
// inline. Each throw_<code> call becomes trap <code>, and the paired
// "unreachable" trap is dropped (only when a throw_ call was folded). The
// input is not modified.
func CanonicalizeFailures(ss []FuncSummary) []FuncSummary {
	out := make([]FuncSummary, len(ss))
	for i, s := range ss {
		calls := map[string]bool{}
		traps := map[string]bool{}
		for _, t := range s.Traps {
			traps[t] = true
		}
		folded := false
		for _, c := range s.Calls {
			if code, ok := strings.CutPrefix(c, "throw_"); ok {
				traps[code] = true
				folded = true
				continue
			}
			calls[c] = true
		}
		if folded {
			delete(traps, "unreachable")
		}
		out[i] = FuncSummary{Name: s.Name, Calls: sortedKeys(calls), Traps: sortedKeys(traps), Unchecked: s.Unchecked}
	}
	return out
}

// Diff compares two back-ends' summaries of the same module per function
// name, reporting runtime-call and trap-site sets that disagree. Functions
// present on only one side are reported too.
func Diff(aEngine string, a []FuncSummary, bEngine string, b []FuncSummary) []Diag {
	var diags []Diag
	add := func(fn, format string, args ...any) {
		diags = append(diags, Diag{Func: fn, Block: -1, Inst: -1, Off: -1, Msg: fmt.Sprintf(format, args...)})
	}
	byName := func(ss []FuncSummary) map[string]FuncSummary {
		m := make(map[string]FuncSummary, len(ss))
		for _, s := range ss {
			m[s.Name] = s
		}
		return m
	}
	am, bm := byName(a), byName(b)
	names := make([]string, 0, len(am))
	for n := range am {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		bs, ok := bm[n]
		if !ok {
			add(n, "present in %s but not in %s", aEngine, bEngine)
			continue
		}
		as := am[n]
		if !equalSets(as.Calls, bs.Calls) {
			add(n, "runtime-call sets differ: %s={%s} %s={%s}",
				aEngine, strings.Join(as.Calls, ","), bEngine, strings.Join(bs.Calls, ","))
		}
		if !equalSets(as.Traps, bs.Traps) {
			add(n, "trap sets differ: %s={%s} %s={%s}",
				aEngine, strings.Join(as.Traps, ","), bEngine, strings.Join(bs.Traps, ","))
		}
	}
	bn := make([]string, 0, len(bm))
	for n := range bm {
		if _, ok := am[n]; !ok {
			bn = append(bn, n)
		}
	}
	sort.Strings(bn)
	for _, n := range bn {
		add(n, "present in %s but not in %s", bEngine, aEngine)
	}
	return diags
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
