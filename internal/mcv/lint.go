package mcv

import (
	"fmt"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Lint statically checks a decoded program against its function table:
// every instruction must survive an encode→decode round trip unchanged,
// branches must land on instruction boundaries inside their function, stack
// accesses must stay within the declared frame, and call / runtime-call
// targets must resolve. numRT bounds the valid runtime-call indices.
func Lint(prog *vt.Program, funcs []vm.UnwindRange, numRT int) []Diag {
	var diags []Diag
	for i := range funcs {
		lintFunc(prog, &funcs[i], numRT, &diags)
	}
	return diags
}

func lintFunc(prog *vt.Program, fn *vm.UnwindRange, numRT int, diags *[]Diag) {
	bad := func(off int32, format string, args ...any) {
		*diags = append(*diags, Diag{
			Func: fn.Name, Block: -1, Inst: -1, Off: off,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	if fn.Start < 0 || int(fn.Start) >= len(prog.Index) || prog.Index[fn.Start] < 0 {
		bad(fn.Start, "function start is not an instruction boundary")
		return
	}
	if int(fn.End) != len(prog.Code) &&
		(fn.End < 0 || int(fn.End) >= len(prog.Index) || prog.Index[fn.End] < 0) {
		bad(fn.End, "function end is not an instruction boundary")
		return
	}

	// The frame size comes from the prologue's SP adjustment. A function
	// without a recognizable `sub sp, sp, imm` (e.g. an expanded
	// large-frame sequence) skips the stack-bounds check.
	frame := int64(-1)
	sp := forArch(prog.Arch).SP
	for k := prog.Index[fn.Start]; int(k) < len(prog.Instrs) && prog.Offsets[k] < fn.End; k++ {
		if in := prog.Instrs[k]; in.Op == vt.SubI && in.RD == sp && in.RA == sp {
			frame = in.Imm
			break
		}
	}

	for k := prog.Index[fn.Start]; int(k) < len(prog.Instrs) && prog.Offsets[k] < fn.End; k++ {
		in := prog.Instrs[k]
		off := prog.Offsets[k]

		if got, err := roundTrip(prog.Arch, in); err != nil {
			bad(off, "%s: does not re-encode: %v", vt.Disasm(in), err)
		} else {
			want := in
			want.Target, got.Target = 0, 0
			if got != want {
				bad(off, "round-trip mismatch: decoded %q, re-decoded %q", vt.Disasm(in), vt.Disasm(got))
			}
		}

		switch {
		case in.Op.IsBranch():
			t := in.Target
			if t < fn.Start || t >= fn.End {
				bad(off, "%s: branch target %d outside function [%d,%d)", vt.Disasm(in), t, fn.Start, fn.End)
			} else if prog.Index[t] < 0 {
				bad(off, "%s: branch target %d is not an instruction boundary", vt.Disasm(in), t)
			}
		case in.Op == vt.Call:
			t := in.Imm
			if t < 0 || t >= int64(len(prog.Code)) || prog.Index[t] < 0 {
				bad(off, "%s: call target %d is not an instruction boundary", vt.Disasm(in), t)
			}
		case in.Op == vt.CallRT:
			if in.Imm < 0 || in.Imm >= int64(numRT) {
				bad(off, "%s: runtime-call index %d out of range [0,%d)", vt.Disasm(in), in.Imm, numRT)
			}
		}

		if frame >= 0 && in.RA == sp {
			if sz := accessSize(in.Op); sz > 0 {
				if in.Imm < 0 || in.Imm+int64(sz) > frame {
					bad(off, "%s: stack access [%d,%d) outside frame of %d bytes",
						vt.Disasm(in), in.Imm, in.Imm+int64(sz), frame)
				}
			}
		}
	}
}

// accessSize returns the byte width of an SP-relative memory access (0 for
// non-memory operations and Lea, which only computes an address).
func accessSize(op vt.Op) int {
	switch op {
	case vt.Load8, vt.Load8S, vt.Store8:
		return 1
	case vt.Load16, vt.Load16S, vt.Store16:
		return 2
	case vt.Load32, vt.Load32S, vt.Store32:
		return 4
	case vt.Load64, vt.Store64, vt.FLoad, vt.FStore:
		return 8
	}
	return 0
}

func forArch(a vt.Arch) *vt.Target { return vt.ForArch(a) }

// roundTrip re-encodes one decoded instruction with a fresh assembler and
// decodes the result. Branch targets are rebound to a dummy label (the
// caller compares everything except Target).
func roundTrip(arch vt.Arch, in vt.Instr) (vt.Instr, error) {
	a := vt.NewAssembler(arch)
	j := in
	if j.Op.IsBranch() {
		l := a.NewLabel()
		a.Bind(l)
		j.Target = int32(l)
	}
	a.Emit(j)
	code, relocs, err := a.Finish()
	if err != nil {
		return vt.Instr{}, err
	}
	if len(relocs) != 0 {
		return vt.Instr{}, fmt.Errorf("re-encoding produced %d relocations", len(relocs))
	}
	p, err := vt.Decode(arch, code)
	if err != nil {
		return vt.Instr{}, err
	}
	if len(p.Instrs) != 1 {
		return vt.Instr{}, fmt.Errorf("re-encoded to %d instructions", len(p.Instrs))
	}
	return p.Instrs[0], nil
}
