package mcv

import (
	"strings"
	"testing"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// remat defines vreg v in dst out of thin air (the checker treats remats as
// constant recomputations), giving tests a way to establish known state.
func remat(v int32, dst Loc) Inst {
	return Inst{Kind: KindRemat, Move: Move{SrcV: -1, DstV: v, Src: LocNone, Dst: dst}}
}

func oneBlock(insts ...Inst) *Func {
	return &Func{
		Name:     "f",
		Blocks:   []Block{{Insts: insts}},
		Target:   vt.ForArch(vt.VX64),
		NumSlots: 4,
	}
}

func wantDiag(t *testing.T, diags []Diag, block int32, inst int, substr string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Block != block || d.Inst != inst {
		t.Errorf("diagnostic at b%d/%d, want b%d/%d", d.Block, d.Inst, block, inst)
	}
	if !strings.Contains(d.Msg, substr) {
		t.Errorf("diagnostic %q does not mention %q", d.Msg, substr)
	}
}

// TestCheckWrongUseRegister: an instruction reads its operand from a register
// the allocator never put the vreg in.
func TestCheckWrongUseRegister(t *testing.T) {
	f := oneBlock(
		remat(1, GPR(1)),
		Inst{Kind: KindNormal, Op: vt.Add, Ops: []Operand{{V: 1, Loc: GPR(2)}}},
	)
	wantDiag(t, CheckFunc(f), 0, 1, "use of v1 reads r2")
}

// TestCheckDroppedReload: a vreg is spilled, a call clobbers its register,
// and a later use reads the register without a reload. Inserting the reload
// makes the same function clean.
func TestCheckDroppedReload(t *testing.T) {
	spill := Inst{Kind: KindSpill, Move: Move{SrcV: 1, DstV: 1, Src: GPR(1), Dst: Slot(0)}}
	call := Inst{Kind: KindNormal, Op: vt.Call, Call: true}
	reload := Inst{Kind: KindReload, Move: Move{SrcV: 1, DstV: 1, Src: Slot(0), Dst: GPR(1)}}
	use := Inst{Kind: KindNormal, Op: vt.Add, Ops: []Operand{{V: 1, Loc: GPR(1)}}}

	f := oneBlock(remat(1, GPR(1)), spill, call, use)
	wantDiag(t, CheckFunc(f), 0, 3, "use of v1 reads r1")

	f = oneBlock(remat(1, GPR(1)), spill, call, reload, use)
	if diags := CheckFunc(f); len(diags) != 0 {
		t.Errorf("reload-present variant should be clean, got %v", diags)
	}
}

// TestCheckUnsavedCalleeSaved: a def lands in a callee-saved register the
// prologue does not preserve.
func TestCheckUnsavedCalleeSaved(t *testing.T) {
	f := oneBlock(
		Inst{Kind: KindNormal, Op: vt.MovRI, Ops: []Operand{{V: 1, Loc: GPR(10), Def: true}}},
	)
	wantDiag(t, CheckFunc(f), 0, 0, "writes callee-saved r10")

	f.Saved = []uint8{10}
	if diags := CheckFunc(f); len(diags) != 0 {
		t.Errorf("saved variant should be clean, got %v", diags)
	}
}

// TestCheckOutOfRangeSlot: a spill targets a slot beyond the frame.
func TestCheckOutOfRangeSlot(t *testing.T) {
	f := oneBlock(
		remat(1, GPR(1)),
		Inst{Kind: KindSpill, Move: Move{SrcV: 1, DstV: 1, Src: GPR(1), Dst: Slot(9)}},
	)
	wantDiag(t, CheckFunc(f), 0, 1, "out-of-range spill slot 9")
}

// lintProg assembles a tiny vx64 function (movi; addi; br back; ret) and
// returns its decoded program plus function table.
func lintProg(t *testing.T) (*vt.Program, []vm.UnwindRange) {
	t.Helper()
	a := vt.NewAssembler(vt.VX64)
	l := a.NewLabel()
	a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: 7})
	a.Bind(l)
	a.Emit(vt.Instr{Op: vt.AddI, RD: 1, RA: 1, Imm: 1})
	a.Emit(vt.Instr{Op: vt.Br, Target: int32(l)})
	a.Emit(vt.Instr{Op: vt.Ret})
	code, relocs, err := a.Finish()
	if err != nil || len(relocs) != 0 {
		t.Fatalf("assemble: err=%v relocs=%d", err, len(relocs))
	}
	prog, err := vt.Decode(vt.VX64, code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return prog, []vm.UnwindRange{{Start: 0, End: int32(len(code)), Name: "f"}}
}

// TestLintBadBranchOffset: a branch whose target is inside the function but
// not on an instruction boundary, and one pointing outside the function.
func TestLintBadBranchOffset(t *testing.T) {
	prog, funcs := lintProg(t)
	if diags := Lint(prog, funcs, 0); len(diags) != 0 {
		t.Fatalf("pristine program should lint clean, got %v", diags)
	}

	br := -1
	for k := range prog.Instrs {
		if prog.Instrs[k].Op == vt.Br {
			br = k
		}
	}
	if br < 0 {
		t.Fatal("no Br instruction in test program")
	}

	prog.Instrs[br].Target = 1 // mid-instruction: movi is several bytes long
	diags := Lint(prog, funcs, 0)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "not an instruction boundary") {
		t.Errorf("mid-instruction target: got %v", diags)
	}
	if len(diags) == 1 && diags[0].Off != prog.Offsets[br] {
		t.Errorf("diagnostic at offset %d, want branch offset %d", diags[0].Off, prog.Offsets[br])
	}

	prog.Instrs[br].Target = funcs[0].End + 8
	diags = Lint(prog, funcs, 0)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "outside function") {
		t.Errorf("out-of-function target: got %v", diags)
	}
}

// TestLintBadRuntimeCallIndex: a CallRT index past the runtime table.
func TestLintBadRuntimeCallIndex(t *testing.T) {
	a := vt.NewAssembler(vt.VX64)
	a.Emit(vt.Instr{Op: vt.CallRT, Imm: 5})
	a.Emit(vt.Instr{Op: vt.Ret})
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := vt.Decode(vt.VX64, code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	funcs := []vm.UnwindRange{{Start: 0, End: int32(len(code)), Name: "f"}}
	diags := Lint(prog, funcs, 3)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "out of range") {
		t.Errorf("bad runtime-call index: got %v", diags)
	}
}
