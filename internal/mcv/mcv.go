// Package mcv is the machine-code verifier: a static-analysis layer below
// the QIR verifier that checks what the compiling back-ends actually
// produce. It has three independent passes:
//
//   - a symbolic register-allocation checker (CheckFunc) in the style of
//     regalloc2's checker: an abstract dataflow interpretation over the
//     allocated code that maps every physical register and spill slot to
//     the set of virtual registers it provably holds, and verifies that
//     every use reads a location containing the right vreg, that spills
//     and reloads pair up, and that callee-saved/clobber discipline holds
//     across calls;
//   - a machine-code lint (Lint) over decoded programs: encode→decode
//     round-trip equality, branch targets on instruction boundaries inside
//     the function, stack accesses within the declared frame, and
//     call/runtime-call targets that resolve;
//   - a cross-backend differential summary (Summarize/Diff) comparing
//     per-function runtime-call sets and trap sites across back-ends
//     compiling the same QIR module.
//
// The package is deliberately independent of any back-end: back-ends adapt
// their post-allocation representation into the small Func/Inst model here.
package mcv

import (
	"fmt"
	"sort"

	"qcc/internal/vt"
)

// Loc is an abstract storage location: a physical integer register, a
// physical float register, or a spill slot.
type Loc int32

const (
	fprBase  Loc = 256
	slotBase Loc = 512
	// LocNone marks an absent location.
	LocNone Loc = -1
)

// GPR returns the location of integer register p.
func GPR(p uint8) Loc { return Loc(p) }

// FPR returns the location of float register p.
func FPR(p uint8) Loc { return fprBase + Loc(p) }

// Slot returns the location of spill slot s.
func Slot(s int32) Loc { return slotBase + Loc(s) }

// IsGPR reports whether l is an integer register.
func (l Loc) IsGPR() bool { return l >= 0 && l < fprBase }

// IsFPR reports whether l is a float register.
func (l Loc) IsFPR() bool { return l >= fprBase && l < slotBase }

// IsSlot reports whether l is a spill slot.
func (l Loc) IsSlot() bool { return l >= slotBase }

// Reg returns the physical register number of a GPR/FPR location.
func (l Loc) Reg() uint8 {
	if l.IsFPR() {
		return uint8(l - fprBase)
	}
	return uint8(l)
}

// SlotIndex returns the slot number of a slot location.
func (l Loc) SlotIndex() int32 { return int32(l - slotBase) }

func (l Loc) String() string {
	switch {
	case l == LocNone:
		return "<none>"
	case l.IsGPR():
		return fmt.Sprintf("r%d", uint8(l))
	case l.IsFPR():
		return fmt.Sprintf("f%d", l.Reg())
	default:
		return fmt.Sprintf("slot%d", l.SlotIndex())
	}
}

// Kind classifies instructions for the allocation checker.
type Kind uint8

const (
	// KindNormal is any computing instruction: uses are checked, defs
	// overwrite their location.
	KindNormal Kind = iota
	// KindMove copies a value between two locations (register moves and
	// allocator edge moves).
	KindMove
	// KindSpill stores a register to a spill slot.
	KindSpill
	// KindReload loads a spill slot back into a register.
	KindReload
	// KindRemat recomputes a constant value into a register instead of
	// reloading it; unlike a def it does not invalidate other copies.
	KindRemat
)

func (k Kind) String() string {
	switch k {
	case KindMove:
		return "move"
	case KindSpill:
		return "spill"
	case KindReload:
		return "reload"
	case KindRemat:
		return "remat"
	default:
		return "inst"
	}
}

// Operand is one checked register operand of a normal instruction. V < 0
// marks a fixed physical-register reference (ABI registers): those are not
// tracked symbolically, but their defs still clobber the location.
type Operand struct {
	V   int32
	Loc Loc
	Def bool
}

// Move describes the data movement of a move/spill/reload/remat. SrcV/DstV
// are the virtual registers involved (-1 for fixed physical sources such as
// incoming arguments).
type Move struct {
	SrcV, DstV int32
	Src, Dst   Loc
}

// Edge is a control-flow edge leaving a branch instruction, optionally
// carrying the allocator's parallel edge moves (block-parameter shuffles).
type Edge struct {
	Succ  int32
	Moves []Move
}

// Inst is one instruction in checker form.
type Inst struct {
	Kind Kind
	Op   vt.Op
	Ops  []Operand
	Move Move
	Call bool
	Edge *Edge
}

// Block is one basic block.
type Block struct {
	Insts []Inst
	Succs []int32
}

// Func is an allocated function ready for checking.
type Func struct {
	Name   string
	Blocks []Block
	Target *vt.Target
	// Saved lists the callee-saved registers the prologue preserves; any
	// write to a callee-saved register outside this set is an error.
	Saved []uint8
	// NumSlots bounds the spill-slot indices (-1: unknown).
	NumSlots int32
}

// Diag is one located diagnostic. Block/Inst locate allocation-checker
// findings; Off locates machine-code findings (Block < 0).
type Diag struct {
	Func  string
	Block int32
	Inst  int
	Off   int32
	Msg   string
}

func (d Diag) String() string {
	if d.Block >= 0 {
		return fmt.Sprintf("%s: b%d/%d: %s", d.Func, d.Block, d.Inst, d.Msg)
	}
	return fmt.Sprintf("%s+0x%x: %s", d.Func, d.Off, d.Msg)
}

// Error folds diagnostics into a single error (nil when the list is empty).
func Error(what string, diags []Diag) error {
	if len(diags) == 0 {
		return nil
	}
	msg := what + ":"
	for i, d := range diags {
		if i == 4 {
			msg += fmt.Sprintf("\n  ... and %d more", len(diags)-i)
			break
		}
		msg += "\n  " + d.String()
	}
	return fmt.Errorf("%s", msg)
}

// maxDiagsPerFunc caps the diagnostics one function can produce so a single
// systematic mistake does not flood the report.
const maxDiagsPerFunc = 32

// vset is a set of virtual registers. Stored sets are treated as immutable:
// state updates replace sets instead of mutating them, so cloned states can
// share them safely.
type vset map[int32]struct{}

// state maps each location to the set of vregs it provably holds. A missing
// location holds nothing provable.
type state map[Loc]vset

func cloneState(s state) state {
	ns := make(state, len(s))
	for l, v := range s {
		ns[l] = v
	}
	return ns
}

func locHas(s state, l Loc, v int32) bool {
	_, ok := s[l][v]
	return ok
}

// killVreg removes v from every location (copy-on-write).
func killVreg(s state, v int32) {
	for l, set := range s {
		if _, ok := set[v]; !ok {
			continue
		}
		if len(set) == 1 {
			delete(s, l)
			continue
		}
		ns := make(vset, len(set)-1)
		for x := range set {
			if x != v {
				ns[x] = struct{}{}
			}
		}
		s[l] = ns
	}
}

// addTo adds v to the set at l (copy-on-write).
func addTo(s state, l Loc, v int32) {
	old := s[l]
	ns := make(vset, len(old)+1)
	for x := range old {
		ns[x] = struct{}{}
	}
	ns[v] = struct{}{}
	s[l] = ns
}

// intersectInto intersects src into dst, returning the meet and whether dst
// shrank. dst is not modified.
func intersectInto(dst, src state) (state, bool) {
	out := make(state, len(dst))
	changed := false
	for l, dset := range dst {
		sset := src[l]
		if len(sset) == 0 {
			changed = true
			continue
		}
		keep := make(vset)
		for v := range dset {
			if _, ok := sset[v]; ok {
				keep[v] = struct{}{}
			}
		}
		if len(keep) == 0 {
			changed = true
			continue
		}
		if len(keep) != len(dset) {
			changed = true
		}
		out[l] = keep
	}
	return out, changed
}

type checker struct {
	f      *Func
	saved  map[uint8]bool
	diags  []Diag
	report bool
	block  int32
	inst   int
}

func (c *checker) diagf(format string, args ...any) {
	if !c.report || len(c.diags) >= maxDiagsPerFunc {
		return
	}
	c.diags = append(c.diags, Diag{
		Func: c.f.Name, Block: c.block, Inst: c.inst, Off: -1,
		Msg: fmt.Sprintf(format, args...),
	})
}

func holders(s state, l Loc) string {
	set := s[l]
	if len(set) == 0 {
		return "nothing"
	}
	vs := make([]int, 0, len(set))
	for v := range set {
		vs = append(vs, int(v))
	}
	sort.Ints(vs)
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("v%d", v)
	}
	return out
}

// checkDst enforces callee-saved discipline and slot bounds on a written
// location.
func (c *checker) checkDst(l Loc) {
	if l.IsGPR() {
		p := l.Reg()
		if p != c.f.Target.SP && c.f.Target.IsCalleeSaved(p) && !c.saved[p] {
			c.diagf("writes callee-saved r%d, which the prologue does not save", p)
		}
		return
	}
	if l.IsSlot() && c.f.NumSlots >= 0 {
		if s := l.SlotIndex(); s < 0 || s >= c.f.NumSlots {
			c.diagf("writes out-of-range spill slot %d (frame has %d)", s, c.f.NumSlots)
		}
	}
}

func (c *checker) checkUse(s state, what string, l Loc, v int32) {
	if v < 0 {
		return // fixed physical reference: not tracked
	}
	if !locHas(s, l, v) {
		c.diagf("%s of v%d reads %s, which holds %s", what, v, l, holders(s, l))
		// Adopt the claim to suppress cascading reports downstream.
		addTo(s, l, v)
	}
}

// applyMove performs the common move/spill/reload transfer: dst receives
// src's contents plus the moved vreg. When the move redefines a different
// vreg (DstV != SrcV) every other copy of DstV dies; a spill/reload of one
// vreg (DstV == SrcV) leaves existing copies — including the source — valid.
func (c *checker) applyMove(s state, m Move, what string) {
	c.checkUse(s, what, m.Src, m.SrcV)
	src := s[m.Src]
	ns := make(vset, len(src)+2)
	for x := range src {
		ns[x] = struct{}{}
	}
	if m.SrcV >= 0 {
		ns[m.SrcV] = struct{}{}
	}
	if m.DstV >= 0 {
		if m.DstV != m.SrcV {
			killVreg(s, m.DstV)
		}
		ns[m.DstV] = struct{}{}
	}
	if len(ns) > 0 {
		s[m.Dst] = ns
	} else {
		delete(s, m.Dst)
	}
	c.checkDst(m.Dst)
}

type edgeOut struct {
	succ int32
	st   state
}

// step interprets one instruction over s, appending per-edge out-states for
// explicit control-flow edges.
func (c *checker) step(s state, in *Inst, outs *[]edgeOut) {
	switch in.Kind {
	case KindMove, KindSpill, KindReload:
		c.applyMove(s, in.Move, in.Kind.String())
		return
	case KindRemat:
		m := in.Move
		if m.DstV >= 0 {
			s[m.Dst] = vset{m.DstV: {}}
		} else {
			delete(s, m.Dst)
		}
		c.checkDst(m.Dst)
		return
	}

	// Normal instruction: uses first.
	for i := range in.Ops {
		if o := &in.Ops[i]; !o.Def {
			c.checkUse(s, fmt.Sprintf("%s use", in.Op), o.Loc, o.V)
		}
	}
	if in.Edge != nil {
		es := cloneState(s)
		if len(in.Edge.Moves) > 0 {
			c.applyEdgeMoves(es, in.Edge.Moves)
		}
		*outs = append(*outs, edgeOut{succ: in.Edge.Succ, st: es})
	}
	if in.Call {
		tgt := c.f.Target
		for _, p := range tgt.CallerSaved {
			delete(s, GPR(p))
		}
		delete(s, GPR(tgt.Scratch))
		for p := 0; p < tgt.NumFPR; p++ {
			delete(s, FPR(uint8(p)))
		}
	}
	for i := range in.Ops {
		o := &in.Ops[i]
		if !o.Def {
			continue
		}
		if o.V >= 0 {
			killVreg(s, o.V)
			s[o.Loc] = vset{o.V: {}}
		} else {
			delete(s, o.Loc)
		}
		c.checkDst(o.Loc)
	}
}

// applyEdgeMoves interprets the allocator's parallel edge moves: all
// sources read the pre-edge state, writes land in order.
func (c *checker) applyEdgeMoves(s state, moves []Move) {
	srcs := make([]vset, len(moves))
	for k, m := range moves {
		c.checkUse(s, "edge move", m.Src, m.SrcV)
		srcs[k] = s[m.Src]
	}
	for k, m := range moves {
		ns := make(vset, len(srcs[k])+2)
		for x := range srcs[k] {
			ns[x] = struct{}{}
		}
		if m.SrcV >= 0 {
			ns[m.SrcV] = struct{}{}
		}
		if m.DstV >= 0 {
			if m.DstV != m.SrcV {
				killVreg(s, m.DstV)
			}
			ns[m.DstV] = struct{}{}
		}
		if len(ns) > 0 {
			s[m.Dst] = ns
		} else {
			delete(s, m.Dst)
		}
		c.checkDst(m.Dst)
	}
}

// evalBlock interprets block b from in-state in (which it does not modify)
// and returns the out-state of every control-flow edge.
func (c *checker) evalBlock(b int32, in state) []edgeOut {
	s := cloneState(in)
	var outs []edgeOut
	blk := &c.f.Blocks[b]
	for i := range blk.Insts {
		c.inst = i
		c.step(s, &blk.Insts[i], &outs)
	}
	// Successors without an explicit edge receive the block-end state
	// (back-ends whose MIR has no edge moves list successors only).
	covered := make(map[int32]bool, len(outs))
	for _, eo := range outs {
		covered[eo.succ] = true
	}
	for _, succ := range blk.Succs {
		if !covered[succ] {
			outs = append(outs, edgeOut{succ: succ, st: cloneState(s)})
		}
	}
	return outs
}

// CheckFunc runs the symbolic register-allocation check: a forward dataflow
// fixpoint with intersection meet (a location is trusted only if it holds
// the value on every incoming path), then a reporting pass over the fixed
// in-states.
func CheckFunc(f *Func) []Diag {
	if len(f.Blocks) == 0 {
		return nil
	}
	c := &checker{f: f, saved: make(map[uint8]bool, len(f.Saved))}
	for _, p := range f.Saved {
		c.saved[p] = true
	}

	n := len(f.Blocks)
	ins := make([]state, n)
	ins[0] = state{}
	queued := make([]bool, n)
	work := []int32{0}
	queued[0] = true
	// The meet is a finite descending chain, so the fixpoint terminates;
	// the bound is a defensive backstop only.
	for steps := 0; len(work) > 0 && steps < 1000*n+10000; steps++ {
		b := work[0]
		work = work[1:]
		queued[b] = false
		c.block = b
		for _, eo := range c.evalBlock(b, ins[b]) {
			if eo.succ < 0 || int(eo.succ) >= n {
				continue // reported in the reporting pass
			}
			if ins[eo.succ] == nil {
				ins[eo.succ] = eo.st
			} else {
				merged, changed := intersectInto(ins[eo.succ], eo.st)
				if !changed {
					continue
				}
				ins[eo.succ] = merged
			}
			if !queued[eo.succ] {
				work = append(work, eo.succ)
				queued[eo.succ] = true
			}
		}
	}

	// Reporting pass from the fixed in-states (skipping unreachable
	// blocks, whose in-state never formed).
	c.report = true
	for b := 0; b < n; b++ {
		if ins[b] == nil {
			continue
		}
		c.block = int32(b)
		for _, eo := range c.evalBlock(int32(b), ins[b]) {
			if eo.succ < 0 || int(eo.succ) >= n {
				c.diagf("edge to out-of-range block %d", eo.succ)
			}
		}
	}
	return c.diags
}
