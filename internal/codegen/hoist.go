package codegen

import (
	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/sa"
)

var (
	obsHoistCands  = obs.NewCounter("hoist.candidates")
	obsHoisted     = obs.NewCounter("hoist.hoisted")
	obsKeptInline  = obs.NewCounter("hoist.kept_inline")
	obsHoistSlots  = obs.NewCounter("hoist.pool_slots")
	obsHoistRounds = obs.NewCounter("hoist.analysis_rounds")
)

// HoistStats summarizes the constant-hoisting pass over one module.
type HoistStats struct {
	// Enabled records whether the pass ran at all.
	Enabled bool
	// Candidates is the number of user literals considered.
	Candidates int
	// Hoisted is how many were moved to the constant pool.
	Hoisted int
	// KeptInline is how many stayed inline because the static analysis
	// proved fewer checks redundant with the literal widened (the literal
	// is range-load-bearing), or because the pool was full.
	KeptInline int
	// PoolSlots is the number of pool slots the module uses.
	PoolSlots int
}

// hoistConstants rewrites user-supplied query literals (recorded during
// expression emission) into constant-pool loads, turning the compiled body
// into a parameterized plan: modules that differ only in literal values
// produce identical function bodies and therefore share entries in the
// content-addressed code cache, with the actual values bound into pool
// slots at execution time.
//
// Not every literal is eligible. The check-elimination pass exploits the
// compile-time value of some literals — a filter constant can bound an
// induction variable or an arithmetic result, turning a trapping operation
// or a bounds check provably redundant. Hoisting such a literal erases the
// value-range fact and would silently re-introduce runtime checks. The pass
// therefore classifies each candidate by hypothetical widening: it asks the
// analysis how many checks remain provable when the literal's range is
// widened to its type bounds (sa.Facts.WideConsts), and keeps the literal
// inline when the eliminable set shrinks. The per-function decision tally
// lands in qir.Prov (Hoisted/KeptInline) for qtrace attribution.
func (c *Compiler) hoistConstants(cat *rt.Catalog) {
	stats := HoistStats{Enabled: true}
	defer func() {
		stats.PoolSlots = len(c.mod.Pool)
		c.out.Hoist = stats
		obsHoistCands.Add(int64(stats.Candidates))
		obsHoisted.Add(int64(stats.Hoisted))
		obsKeptInline.Add(int64(stats.KeptInline))
		obsHoistSlots.Add(int64(stats.PoolSlots))
	}()
	if len(c.hoistCands) == 0 {
		return
	}
	regions := moduleRegions(cat)
	for fi, f := range c.mod.Funcs {
		cands := c.hoistCands[f]
		if len(cands) == 0 {
			continue
		}
		stats.Candidates += len(cands)
		hoist := cands
		if c.opts.Elim {
			hoist = c.classifyHoists(fi, f, cands, regions, cat)
		}
		hoistSet := make(map[qir.Value]bool, len(hoist))
		for _, v := range hoist {
			hoistSet[v] = true
		}
		for _, v := range cands {
			if hoistSet[v] && c.rewriteToPool(f, v) {
				stats.Hoisted++
				f.Prov.Hoisted++
			} else {
				stats.KeptInline++
				f.Prov.KeptInline++
			}
		}
	}
}

// classifyHoists partitions a function's candidates into hoistable ones,
// returned, and range-load-bearing ones, omitted. Classification is by
// hypothetical widening against the same facts the check eliminator will
// use: first the whole candidate set at once (the common case — query
// literals rarely feed safety proofs), then, on regression, greedily one
// candidate at a time in emission order, keeping each hoist only if the
// eliminable-check count stays at the all-inline baseline. The greedy order
// makes the decision deterministic, which the cache keying relies on.
func (c *Compiler) classifyHoists(fi int, f *qir.Func, cands []qir.Value, regions []sa.Region, cat *rt.Catalog) []qir.Value {
	elimCount := func(wide map[qir.Value]bool) int {
		facts := c.out.factsFor(fi, regions, cat)
		facts.WideConsts = wide
		obsHoistRounds.Inc()
		a := sa.Analyze(f, facts)
		n := 0
		for _, acc := range a.Accesses() {
			if acc.Safe {
				n++
			}
		}
		return n
	}
	base := elimCount(nil)
	all := make(map[qir.Value]bool, len(cands))
	for _, v := range cands {
		all[v] = true
	}
	if elimCount(all) == base {
		return cands
	}
	cur := make(map[qir.Value]bool, len(cands))
	var hoist []qir.Value
	for _, v := range cands {
		cur[v] = true
		if elimCount(cur) < base {
			delete(cur, v)
			continue
		}
		hoist = append(hoist, v)
	}
	return hoist
}

// rewriteToPool replaces literal instruction v with a constant-pool load,
// allocating the next module pool slot. Returns false when the pool is full
// (the literal stays inline — a performance fallback, not an error) or the
// instruction is not a poolable literal.
func (c *Compiler) rewriteToPool(f *qir.Func, v qir.Value) bool {
	if len(c.mod.Pool) >= rt.ConstPoolSlots {
		return false
	}
	in := &f.Instrs[v]
	var pc qir.PoolConst
	switch in.Op {
	case qir.OpConst:
		// Imm is already the sign-extended 64-bit value for every narrow
		// integer type, which is exactly the canonical slot encoding.
		pc = qir.PoolConst{Type: in.Type, Lo: uint64(in.Imm)}
	case qir.OpConstF:
		pc = qir.PoolConst{Type: qir.F64, Lo: uint64(in.Imm)}
	case qir.OpConst128:
		pc = qir.PoolConst{Type: qir.I128, Lo: f.I128[2*in.Imm], Hi: f.I128[2*in.Imm+1]}
		// Zero the orphaned literal words: f.I128 is hashed in full by the
		// cache unit key, and the whole point of hoisting is that the
		// hashed body no longer depends on the literal's value.
		f.I128[2*in.Imm], f.I128[2*in.Imm+1] = 0, 0
	case qir.OpConstStr:
		// The interned copy in mod.Strings stays behind (harmlessly — the
		// unit key only hashes string table entries still referenced by an
		// OpConstStr instruction); the pool slot carries the value.
		pc = qir.PoolConst{Type: qir.Str, Str: c.mod.Strings[in.Imm]}
	default:
		return false
	}
	slot := c.mod.AddPoolConst(pc)
	*in = qir.Instr{Op: qir.OpConstPool, Type: pc.Type, A: qir.NoValue, B: qir.NoValue, C: qir.NoValue, Imm: slot}

	// Relocate the pool load to the entry block, just before its terminator.
	// Literals typically sit in hot scan loops; the load is loop-invariant by
	// construction (the slot address is compile-time fixed and the value
	// cannot change mid-query), so executing it once per function call
	// instead of once per row removes the indirection from the row loop. A
	// def already in the entry block stays put: the entry runs once anyway,
	// and moving it past a same-block use would break scheduling. For defs
	// in later blocks no use can sit in the entry (SSA: the def's block
	// dominates every use, and nothing but the entry dominates the entry).
	for b := 1; b < len(f.Blocks); b++ {
		list := f.Blocks[b].List
		for i, lv := range list {
			if lv != v {
				continue
			}
			f.Blocks[b].List = append(list[:i], list[i+1:]...)
			entry := &f.Blocks[0]
			n := len(entry.List)
			entry.List = append(entry.List, v)
			entry.List[n-1], entry.List[n] = v, entry.List[n-1]
			return true
		}
	}
	return true
}
