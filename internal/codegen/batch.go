package codegen

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Batch-mode lowering: when Options.Batch is set, scan-heavy pipelines that
// end in an aggregation or join-build sink compile to a main function that
// calls the runtime's vectorized kernel once per morsel instead of a
// tuple-at-a-time loop. Eligibility is deliberately conservative — the
// kernel must reproduce tuple semantics bit-for-bit, including trap order —
// so anything with short-circuit evaluation, narrow-width trapping
// arithmetic, or expressions the kernel does not vectorize falls back to
// the tuple loop (the per-operator mode choice from the hybrid-engine
// literature: Q1/Q6-style scans go batch, point-lookup shapes stay tuple).

// batchChain is a batch-eligible pipeline prefix: one scan plus a conjunct
// list applied in tuple evaluation order.
type batchChain struct {
	scan    *plan.Scan
	tbl     *rt.Table
	nodes   []plan.Node // scan-to-sink chain, for provenance
	filters []plan.Expr
}

// batchScanChain matches a pipeline input of the form
// Select*(Scan(filter?)) and returns its filters in the order the tuple
// code evaluates them (scan filter first, then selects innermost-out).
func (c *Compiler) batchScanChain(n plan.Node) *batchChain {
	var sels []*plan.Select
	for {
		switch x := n.(type) {
		case *plan.Select:
			sels = append(sels, x)
			n = x.Input
		case *plan.Scan:
			tbl, err := c.cat.Table(x.Table)
			if err != nil || len(tbl.Cols) != len(x.Cols) {
				return nil
			}
			bc := &batchChain{scan: x, tbl: tbl}
			if x.Filter != nil {
				bc.filters = append(bc.filters, x.Filter)
			}
			bc.nodes = append(bc.nodes, x)
			for i := len(sels) - 1; i >= 0; i-- {
				bc.filters = append(bc.filters, sels[i].Pred)
				bc.nodes = append(bc.nodes, sels[i])
			}
			return bc
		default:
			return nil
		}
	}
}

// batchType maps a QIR type to its kernel evaluation type. I1 is excluded:
// the tuple code sign-extends booleans from bit 0 (true becomes -1 in a
// widened slot), which byte-width loads cannot reproduce.
func batchType(t qir.Type) (rt.BatchType, bool) {
	switch t {
	case qir.I8, qir.I16, qir.I32, qir.I64:
		return rt.BTInt, true
	case qir.I128:
		return rt.BTI128, true
	case qir.F64:
		return rt.BTF64, true
	case qir.Str:
		return rt.BTStr, true
	}
	return 0, false
}

// batchLeaf reports whether e is a trap-free leaf operand (column or
// constant) of a kernel-evaluable type.
func batchLeaf(e plan.Expr) bool {
	switch x := e.(type) {
	case *plan.Col:
		_, ok := batchType(x.Ty)
		return ok
	case *plan.ConstInt:
		return x.Ty != qir.I1
	case *plan.ConstDec, *plan.ConstFloat, *plan.ConstStr:
		return true
	}
	return false
}

// batchValue reports whether e is kernel-evaluable as a value (aggregate
// arguments). Trapping arithmetic is allowed only at I64/I128/F64 width —
// narrow-width overflow (trap when the result does not round-trip the
// narrow type) is not vectorized.
func batchValue(e plan.Expr) bool {
	if batchLeaf(e) {
		return true
	}
	if x, ok := e.(*plan.Arith); ok {
		switch x.Op {
		case plan.OpAdd, plan.OpSub, plan.OpMul:
		default:
			return false
		}
		t := x.Type()
		if t != qir.I64 && t != qir.I128 && t != qir.F64 {
			return false
		}
		return x.L.Type() == t && x.R.Type() == t && batchValue(x.L) && batchValue(x.R)
	}
	return false
}

// batchFilter reports whether a boolean conjunct is kernel-evaluable. The
// kernel refines a selection vector per conjunct, so filters must be
// trap-free: leaf operands only.
func batchFilter(e plan.Expr) bool {
	switch x := e.(type) {
	case *plan.Cmp:
		t := x.L.Type()
		if t != x.R.Type() {
			return false
		}
		if t == qir.Str {
			if x.Op != plan.CmpEQ && x.Op != plan.CmpNE {
				return false
			}
		} else if _, ok := batchType(t); !ok {
			return false
		}
		return batchLeaf(x.L) && batchLeaf(x.R)
	case *plan.Logic:
		return x.Op == plan.OpAnd && batchFilter(x.L) && batchFilter(x.R)
	case *plan.Between:
		t := x.E.Type()
		if t != x.Lo.Type() || t != x.Hi.Type() || t == qir.Str {
			return false
		}
		if _, ok := batchType(t); !ok {
			return false
		}
		return batchLeaf(x.E) && batchLeaf(x.Lo) && batchLeaf(x.Hi)
	}
	return false
}

// batchKeyOK reports whether a key expression is kernel-evaluable: plain
// column references only. F64 keys are excluded — the tuple chain walk
// compares them with an integer compare on the slot (bit equality), which
// the kernel's typed compare would not reproduce for NaN or signed zero.
func batchKeyOK(e plan.Expr) bool {
	col, ok := e.(*plan.Col)
	if !ok || col.Ty == qir.F64 {
		return false
	}
	_, ok = batchType(col.Ty)
	return ok
}

// batchExpr lowers a plan expression to its kernel form. Callers must have
// established eligibility first.
func (c *Compiler) batchExpr(e plan.Expr, tbl *rt.Table) (*rt.BatchExpr, error) {
	switch x := e.(type) {
	case *plan.Col:
		bt, ok := batchType(x.Ty)
		if !ok {
			return nil, fmt.Errorf("codegen: batch: column type %s", x.Ty)
		}
		col := &tbl.Cols[x.Idx]
		return &rt.BatchExpr{Kind: rt.BECol, Ty: bt, Base: col.Base, Elem: uint64(col.Type.Size())}, nil
	case *plan.ConstInt:
		return &rt.BatchExpr{Kind: rt.BEConst, Ty: rt.BTInt, I: x.V}, nil
	case *plan.ConstDec:
		return &rt.BatchExpr{Kind: rt.BEConst, Ty: rt.BTI128, D: x.V}, nil
	case *plan.ConstFloat:
		return &rt.BatchExpr{Kind: rt.BEConst, Ty: rt.BTF64, F: x.V}, nil
	case *plan.ConstStr:
		return &rt.BatchExpr{Kind: rt.BEConst, Ty: rt.BTStr, S: []byte(x.V)}, nil
	case *plan.Arith:
		l, err := c.batchExpr(x.L, tbl)
		if err != nil {
			return nil, err
		}
		r, err := c.batchExpr(x.R, tbl)
		if err != nil {
			return nil, err
		}
		bt, _ := batchType(x.Type())
		var op uint8
		switch x.Op {
		case plan.OpAdd:
			op = rt.BArithAdd
		case plan.OpSub:
			op = rt.BArithSub
		case plan.OpMul:
			op = rt.BArithMul
		default:
			return nil, fmt.Errorf("codegen: batch: arith op %d", x.Op)
		}
		return &rt.BatchExpr{Kind: rt.BEArith, Ty: bt, Op: op, L: l, R: r}, nil
	case *plan.Cmp:
		l, err := c.batchExpr(x.L, tbl)
		if err != nil {
			return nil, err
		}
		r, err := c.batchExpr(x.R, tbl)
		if err != nil {
			return nil, err
		}
		bt, _ := batchType(x.L.Type())
		return &rt.BatchExpr{Kind: rt.BECmp, Ty: bt, Op: batchCmpOp(x.Op), L: l, R: r}, nil
	case *plan.Logic:
		l, err := c.batchExpr(x.L, tbl)
		if err != nil {
			return nil, err
		}
		r, err := c.batchExpr(x.R, tbl)
		if err != nil {
			return nil, err
		}
		return &rt.BatchExpr{Kind: rt.BEAnd, L: l, R: r}, nil
	case *plan.Between:
		v, err := c.batchExpr(x.E, tbl)
		if err != nil {
			return nil, err
		}
		lo, err := c.batchExpr(x.Lo, tbl)
		if err != nil {
			return nil, err
		}
		hi, err := c.batchExpr(x.Hi, tbl)
		if err != nil {
			return nil, err
		}
		bt, _ := batchType(x.E.Type())
		return &rt.BatchExpr{Kind: rt.BEBetween, Ty: bt, L: v, R: lo, H: hi}, nil
	}
	return nil, fmt.Errorf("codegen: batch: unsupported expression %T", e)
}

func batchCmpOp(op plan.CmpOp) uint8 {
	switch op {
	case plan.CmpEQ:
		return rt.BCmpEQ
	case plan.CmpNE:
		return rt.BCmpNE
	case plan.CmpLT:
		return rt.BCmpLT
	case plan.CmpLE:
		return rt.BCmpLE
	case plan.CmpGT:
		return rt.BCmpGT
	default:
		return rt.BCmpGE
	}
}

// batchAggChain decides batch eligibility for a GroupBy input pipeline.
func (c *Compiler) batchAggChain(g *plan.GroupBy) *batchChain {
	bc := c.batchScanChain(g.Input)
	if bc == nil {
		return nil
	}
	for _, f := range bc.filters {
		if !batchFilter(f) {
			return nil
		}
	}
	for _, k := range g.Keys {
		if !batchKeyOK(k) {
			return nil
		}
	}
	for i := range g.Aggs {
		a := &g.Aggs[i]
		switch a.Fn {
		case plan.AggCount:
			if a.Arg != nil && !batchValue(a.Arg) {
				return nil
			}
		case plan.AggSum, plan.AggAvg:
			if a.Arg == nil || !batchValue(a.Arg) {
				return nil
			}
		case plan.AggMin, plan.AggMax:
			if a.Arg == nil || a.Arg.Type() == qir.Str || !batchValue(a.Arg) {
				return nil
			}
		default:
			return nil
		}
	}
	return bc
}

// batchBuildChain decides batch eligibility for a join build pipeline.
func (c *Compiler) batchBuildChain(j *plan.HashJoin) *batchChain {
	bc := c.batchScanChain(j.Build)
	if bc == nil {
		return nil
	}
	for _, f := range bc.filters {
		if !batchFilter(f) {
			return nil
		}
	}
	for _, k := range j.BuildKeys {
		if !batchKeyOK(k) {
			return nil
		}
	}
	// The payload copies build-schema columns verbatim; a Select chain
	// leaves the scan schema intact, so every payload column is a direct
	// table column.
	for _, col := range j.Build.Schema() {
		if _, ok := batchType(col.Type); !ok {
			return nil
		}
	}
	return bc
}

// pushChainProv mirrors the produce() recursion's provenance stack for a
// chain the batch emitter lowers without recursing: outermost select first,
// scan last (stack top = pipeline source).
func (c *Compiler) pushChainProv(bc *batchChain) int {
	n := 0
	for i := len(bc.nodes) - 1; i >= 0; i-- {
		if e, ok := provOf(bc.nodes[i]); ok {
			c.pushOp(e)
			n++
		}
	}
	return n
}

// emitBatchPipeline opens a SrcTable pipeline whose main function hands the
// whole morsel to the runtime kernel. createSink emits the sink-create
// call into the setup function; cleanup (optional) emits into the cleanup
// function.
func (c *Compiler) emitBatchPipeline(bc *batchChain, spec *rt.BatchSpec, sink SinkKind, htOff int64,
	createSink func(sb *qir.Builder), cleanup func(cb *qir.Builder)) {
	npush := c.pushChainProv(bc)
	c.beginPipeline(SrcTable)
	for i := 0; i < npush; i++ {
		c.popOp()
	}
	c.pipe.Table = bc.scan.Table
	c.pipe.Sink = sink
	c.pipe.SinkOff = htOff
	c.pipe.Batch = true
	c.setMode(c.pipe.SetupFn, "batch")
	c.setMode(c.pipe.MainFn, "batch")
	c.setMode(c.pipe.CleanupFn, "batch")

	sb := c.setup
	createSink(sb)
	bpOff := c.allocState(8)
	desc := sb.ConstStr(string(spec.Encode()))
	bh := sb.Call(qir.I64, rt.FnBatchPrep, desc)
	storeStateHandle(sb, bpOff, bh)
	if cleanup != nil {
		cleanup(c.cleanup)
	}

	b := c.main
	lo, hi := b.Param(1), b.Param(2)
	b.Call(qir.Void, rt.FnBatchExec, loadStateHandle(b, bpOff), loadStateHandle(b, htOff), lo, hi)
	b.Ret(qir.NoValue)
	c.endPipeline()
}

// buildAggSpec assembles the kernel program for a batch aggregation
// pipeline over the tuple code's exact slot layout.
func (c *Compiler) buildAggSpec(g *plan.GroupBy, bc *batchChain, layout rowLayout, aggSlot []int) (*rt.BatchSpec, error) {
	spec := &rt.BatchSpec{Sink: rt.BatchSinkAgg, Width: uint64(layout.width)}
	for _, f := range bc.filters {
		be, err := c.batchExpr(f, bc.tbl)
		if err != nil {
			return nil, err
		}
		spec.Filters = append(spec.Filters, be)
	}
	for i, k := range g.Keys {
		be, err := c.batchExpr(k, bc.tbl)
		if err != nil {
			return nil, err
		}
		bt, _ := batchType(k.Type())
		spec.Keys = append(spec.Keys, rt.BatchKey{Off: layout.offs[i], Ty: bt, E: be})
	}
	for i := range g.Aggs {
		a := &g.Aggs[i]
		ba := rt.BatchAgg{Off: layout.offs[aggSlot[i]]}
		switch a.Fn {
		case plan.AggSum:
			ba.Fn = rt.BAggSum
		case plan.AggCount:
			ba.Fn = rt.BAggCount
		case plan.AggMin:
			ba.Fn = rt.BAggMin
		case plan.AggMax:
			ba.Fn = rt.BAggMax
		case plan.AggAvg:
			ba.Fn = rt.BAggAvg
			ba.COff = layout.offs[aggSlot[i]+1]
		}
		if a.Arg != nil {
			be, err := c.batchExpr(a.Arg, bc.tbl)
			if err != nil {
				return nil, err
			}
			ba.Arg = be
			slotTy := layout.types[aggSlot[i]]
			bt, _ := batchType(slotTy)
			ba.Ty = bt
		} else {
			ba.Ty = rt.BTInt
		}
		spec.Aggs = append(spec.Aggs, ba)
	}
	return spec, nil
}

// buildJoinSpec assembles the kernel program for a batch join-build
// pipeline: widened keys plus verbatim column payload.
func (c *Compiler) buildJoinSpec(j *plan.HashJoin, bc *batchChain, layout rowLayout) (*rt.BatchSpec, error) {
	spec := &rt.BatchSpec{Sink: rt.BatchSinkBuild, Width: uint64(layout.width)}
	for _, f := range bc.filters {
		be, err := c.batchExpr(f, bc.tbl)
		if err != nil {
			return nil, err
		}
		spec.Filters = append(spec.Filters, be)
	}
	for i, k := range j.BuildKeys {
		be, err := c.batchExpr(k, bc.tbl)
		if err != nil {
			return nil, err
		}
		bt, _ := batchType(k.Type())
		spec.Keys = append(spec.Keys, rt.BatchKey{Off: layout.offs[i], Ty: bt, E: be})
	}
	nkeys := len(j.BuildKeys)
	for i := range bc.tbl.Cols {
		col := &bc.tbl.Cols[i]
		spec.Payload = append(spec.Payload, rt.BatchCol{
			Off:  layout.offs[nkeys+i],
			Base: col.Base,
			Elem: uint64(col.Type.Size()),
		})
	}
	return spec, nil
}

// hasF64Sum reports whether any aggregate keeps a float running sum; float
// addition is not associative, so those pipelines stay sequential to keep
// parallel results bit-identical.
func hasF64Sum(g *plan.GroupBy) bool {
	for i := range g.Aggs {
		a := &g.Aggs[i]
		if (a.Fn == plan.AggSum || a.Fn == plan.AggAvg) && a.Arg != nil && a.Arg.Type() == qir.F64 {
			return true
		}
	}
	return false
}

// genAggMerge emits the aggregation merge function the parallel executor
// calls per worker-partition entry (in insertion-stamp order): it probes
// the main table for the entry's group and either combines the partial
// aggregate state or adopts the entry's slots as a fresh group. Combine
// operations mirror emitAggUpdate, including the overflow traps.
func (c *Compiler) genAggMerge(g *plan.GroupBy, layout rowLayout, aggSlot []int, htOff int64) (int, error) {
	idx := len(c.mod.Funcs)
	b := qir.NewFunc(c.mod, fmt.Sprintf("%s_merge%d", c.name, idx), qir.Void, qir.Ptr, qir.Ptr)
	c.setProv(idx, -1, "merge")
	src := b.Param(1)
	c.notePtrFact(b, src, htHeaderSize, layout.width, false)
	h := loadStateHandle(b, htOff)
	hash := b.Load(qir.I64, b.GEP(src, -8, qir.NoValue, 0))
	first := b.Call(qir.Ptr, rt.FnHTLookup, h, hash)
	c.notePtrFact(b, first, htHeaderSize, layout.width, true)
	startBlk := b.Block()

	head := b.NewBlock()
	body := b.NewBlock()
	found := b.NewBlock()
	insert := b.NewBlock()
	chainLatch := b.NewBlock()
	done := b.NewBlock()
	b.Br(head)

	b.SetBlock(head)
	p := b.Phi(qir.Ptr, startBlk, first)
	c.notePtrFact(b, p, htHeaderSize, layout.width, true)
	null := b.Null()
	isNull := b.ICmp(qir.CmpEQ, p, null)
	b.CondBr(isNull, insert, body)

	b.SetBlock(body)
	ehash := b.Load(qir.I64, b.GEP(p, -8, qir.NoValue, 0))
	hashEq := b.ICmp(qir.CmpEQ, ehash, hash)
	keyCmp := b.NewBlock()
	b.CondBr(hashEq, keyCmp, chainLatch)
	b.SetBlock(keyCmp)
	for i := range g.Keys {
		stored := layout.load(b, p, i)
		mine := layout.load(b, src, i)
		var eq qir.Value
		if g.Keys[i].Type() == qir.Str {
			r := b.Call(qir.I64, rt.FnStrEq, stored, mine)
			eq = b.Convert(qir.OpTrunc, qir.I1, r)
		} else {
			eq = b.ICmp(qir.CmpEQ, stored, mine)
		}
		next := b.NewBlock()
		b.CondBr(eq, next, chainLatch)
		b.SetBlock(next)
	}
	b.Br(found)

	b.SetBlock(chainLatch)
	nxt := b.Load(qir.Ptr, b.GEP(p, -16, qir.NoValue, 0))
	c.notePtrFact(b, nxt, htHeaderSize, layout.width, true)
	b.AddPhiArg(p, chainLatch, nxt)
	b.Br(head)

	b.SetBlock(found)
	for i := range g.Aggs {
		a := &g.Aggs[i]
		slot := aggSlot[i]
		cur := layout.load(b, p, slot)
		v := layout.load(b, src, slot)
		switch a.Fn {
		case plan.AggCount:
			layout.store(b, p, slot, b.Bin(qir.OpAdd, cur, v))
		case plan.AggSum:
			if a.Arg.Type() == qir.F64 {
				layout.store(b, p, slot, b.Bin(qir.OpFAdd, cur, v))
			} else {
				layout.store(b, p, slot, b.Bin(qir.OpSAddTrap, cur, v))
			}
		case plan.AggMin, plan.AggMax:
			pred := qir.CmpSLT
			if a.Fn == plan.AggMax {
				pred = qir.CmpSGT
			}
			var better qir.Value
			if a.Arg.Type() == qir.F64 {
				better = b.FCmp(pred, v, cur)
			} else if a.Arg.Type() == qir.Str {
				return 0, fmt.Errorf("codegen: min/max over strings not supported")
			} else {
				better = b.ICmp(pred, v, cur)
			}
			layout.store(b, p, slot, b.Select(better, v, cur))
		case plan.AggAvg:
			if a.Arg.Type() == qir.F64 {
				layout.store(b, p, slot, b.Bin(qir.OpFAdd, cur, v))
			} else {
				layout.store(b, p, slot, b.Bin(qir.OpSAddTrap, cur, v))
			}
			ccur := layout.load(b, p, slot+1)
			cv := layout.load(b, src, slot+1)
			layout.store(b, p, slot+1, b.Bin(qir.OpAdd, ccur, cv))
		default:
			return 0, fmt.Errorf("codegen: bad aggregate %d", a.Fn)
		}
	}
	b.Br(done)

	b.SetBlock(insert)
	np := b.Call(qir.Ptr, rt.FnHTInsert, h, hash)
	c.notePtrFact(b, np, htHeaderSize, layout.width, false)
	for i := range layout.types {
		layout.store(b, np, i, layout.load(b, src, i))
	}
	b.Br(done)

	b.SetBlock(done)
	b.Ret(qir.NoValue)
	return idx, nil
}
