package codegen

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/direct"
	"qcc/internal/obs"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// parEnv builds a test environment with a "big" table of n rows:
// id I64 = row+1, val I64 = row%7, div I64 = 1 except divZeroRow (0).
func parEnv(t *testing.T, n int64, divZeroRow int64) *testEnv {
	t.Helper()
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 64 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	big := cat.CreateTable("big", n,
		rt.ColSpec{Name: "id", Type: qir.I64},
		rt.ColSpec{Name: "val", Type: qir.I64},
		rt.ColSpec{Name: "div", Type: qir.I64},
	)
	for i := int64(0); i < n; i++ {
		cat.SetInt(big.MustCol("id"), i, i+1)
		cat.SetInt(big.MustCol("val"), i, i%7)
		d := int64(1)
		if i == divZeroRow {
			d = 0
		}
		cat.SetInt(big.MustCol("div"), i, d)
	}
	return &testEnv{db: db, cat: cat}
}

func bigSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "id", Type: qir.I64},
		{Name: "val", Type: qir.I64},
		{Name: "div", Type: qir.I64},
	}
}

// runPar compiles with batch+parallel options on the direct engine and
// executes through RunParallel.
func runPar(t *testing.T, env *testEnv, p plan.Node, jobs int, morsel int64) ([]string, error) {
	t.Helper()
	c, err := CompileOpts("q", p, env.cat, Options{Elim: true, Batch: true, Parallel: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := direct.New()
	ex, _, err := eng.Compile(c.Module, &backend.Env{DB: env.db, Arch: vt.VX64})
	if err != nil {
		t.Fatalf("backend compile: %v", err)
	}
	mod := ex.(interface{ Module() *vm.Module }).Module()
	env.db.Out.Reset()
	runErr := RunParallel(env.db, env.cat, c, ex.Call,
		ExecOptions{Jobs: jobs, Module: mod, MorselSize: morsel, ArenaMB: 1})
	return env.db.Out.Ordered(), runErr
}

// runSeqRef runs the same plan sequentially with default compile options as
// the reference.
func runSeqRef(t *testing.T, env *testEnv, p plan.Node, morsel int64) ([]string, error) {
	t.Helper()
	c, err := Compile("q", p, env.cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := direct.New()
	ex, _, err := eng.Compile(c.Module, &backend.Env{DB: env.db, Arch: vt.VX64})
	if err != nil {
		t.Fatalf("backend compile: %v", err)
	}
	env.db.Out.Reset()
	runErr := RunMorsels(env.db, env.cat, c, ex.Call, morsel)
	return env.db.Out.Ordered(), runErr
}

func sumPlan() plan.Node {
	return &plan.GroupBy{
		Input: &plan.Scan{Table: "big", Cols: bigSchema()},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: col(1, qir.I64), Name: "s"},
			{Fn: plan.AggCount, Name: "n"},
		},
	}
}

func TestParallelEmptyTable(t *testing.T) {
	env := parEnv(t, 0, -1)
	rows, err := runPar(t, env, &plan.Project{
		Input: &plan.Scan{Table: "big", Cols: bigSchema()},
		Exprs: []plan.Expr{col(0, qir.I64)},
	}, 4, 16)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty table produced %d rows", len(rows))
	}
	// Keyless aggregation over an empty table must also match sequential
	// (no groups, no output rows).
	env = parEnv(t, 0, -1)
	ref, err := runSeqRef(t, env, sumPlan(), 16)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	env = parEnv(t, 0, -1)
	rows, err = runPar(t, env, sumPlan(), 4, 16)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("empty-table aggregation: parallel %v, sequential %v", rows, ref)
	}
}

func TestParallelTableSmallerThanMorsel(t *testing.T) {
	// 5 rows, morsel 128: one morsel -> the executor must fall back to the
	// sequential path and still produce the right answer.
	env := parEnv(t, 5, -1)
	ref, err := runSeqRef(t, env, sumPlan(), 128)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	env = parEnv(t, 5, -1)
	before := obs.NewCounter("exec_workers").Load()
	rows, err := runPar(t, env, sumPlan(), 4, 128)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("parallel %v, sequential %v", rows, ref)
	}
	if got := obs.NewCounter("exec_workers").Load() - before; got != 0 {
		t.Fatalf("single-morsel pipeline dispatched to %d workers, want sequential fallback", got)
	}
}

func TestParallelNonDividingMorselSize(t *testing.T) {
	// 1000 rows at morsel 128: 7 full morsels and a 104-row remainder.
	env := parEnv(t, 1000, -1)
	ref, err := runSeqRef(t, env, sumPlan(), 128)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	for _, jobs := range []int{2, 3, 4, 8} {
		env = parEnv(t, 1000, -1)
		rows, err := runPar(t, env, sumPlan(), jobs, 128)
		if err != nil {
			t.Fatalf("jobs=%d: run: %v", jobs, err)
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("jobs=%d: parallel %v, sequential %v", jobs, rows, ref)
		}
	}
}

// TestParallelTrapMidMorsel places a division by zero at row 300 (morsel 2
// of a 128-row morsel grid) and checks the parallel executor reproduces the
// sequential trap exactly: same trap code, same trapping PC, and the same
// output-row prefix — everything emitted before the trapping row, nothing
// after it.
func TestParallelTrapMidMorsel(t *testing.T) {
	const trapRow = 300
	divide, err := plan.NewArith(plan.OpDiv, col(0, qir.I64), col(2, qir.I64))
	if err != nil {
		t.Fatal(err)
	}
	q := &plan.Project{
		Input: &plan.Scan{Table: "big", Cols: bigSchema()},
		Exprs: []plan.Expr{divide},
	}

	env := parEnv(t, 1000, trapRow)
	refRows, refErr := runSeqRef(t, env, q, 128)
	if refErr == nil {
		t.Fatal("sequential run did not trap")
	}
	var refTrap *vm.Trap
	if !errors.As(refErr, &refTrap) {
		t.Fatalf("sequential error %v is not a vm trap", refErr)
	}
	if len(refRows) != trapRow {
		t.Fatalf("sequential emitted %d rows before the trap, want %d", len(refRows), trapRow)
	}

	for _, jobs := range []int{2, 4} {
		env = parEnv(t, 1000, trapRow)
		flightBefore := obs.FlightRec().Len()
		rows, err := runPar(t, env, q, jobs, 128)
		if err == nil {
			t.Fatalf("jobs=%d: parallel run did not trap", jobs)
		}
		var tr *vm.Trap
		if !errors.As(err, &tr) {
			t.Fatalf("jobs=%d: error %v is not a vm trap", jobs, err)
		}
		if tr.Code != refTrap.Code {
			t.Errorf("jobs=%d: trap code %v, want %v", jobs, tr.Code, refTrap.Code)
		}
		if tr.PC != refTrap.PC {
			t.Errorf("jobs=%d: trap PC +%d, want +%d", jobs, tr.PC, refTrap.PC)
		}
		if !strings.Contains(err.Error(), "morsel [256,384)") {
			t.Errorf("jobs=%d: error %q does not name the trapping morsel", jobs, err)
		}
		if !reflect.DeepEqual(rows, refRows) {
			t.Errorf("jobs=%d: output prefix diverges: %d rows vs %d sequential", jobs, len(rows), len(refRows))
		}
		// The worker trap must still symbolize through the module's unwind
		// info into the flight recorder, attributing the generated main
		// function of the scan pipeline.
		if obs.FlightRec().Len() == flightBefore {
			t.Fatalf("jobs=%d: worker trap not recorded in flight recorder", jobs)
		}
		found := false
		for _, ev := range obs.FlightRec().Snapshot() {
			if ev.Kind == obs.FlightTrap && strings.Contains(ev.Name, "q_p0_main") {
				found = true
			}
		}
		if !found {
			t.Errorf("jobs=%d: no symbolized FlightTrap event for q_p0_main", jobs)
		}
	}
}

// TestParallelBatchAggMatchesTuple pins the batch kernels against the tuple
// path on a filter+groupby directly (independent of the TPC-H corpus).
func TestParallelBatchAggMatchesTuple(t *testing.T) {
	pred, err := plan.NewCmp(plan.CmpGE, col(1, qir.I64), &plan.ConstInt{Ty: qir.I64, V: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Select{
				Input: &plan.Scan{Table: "big", Cols: bigSchema()},
				Pred:  pred,
			},
			Keys:  []plan.Expr{col(1, qir.I64)},
			Names: []string{"val"},
			Aggs: []plan.AggExpr{
				{Fn: plan.AggSum, Arg: col(0, qir.I64), Name: "s"},
				{Fn: plan.AggMin, Arg: col(0, qir.I64), Name: "lo"},
				{Fn: plan.AggMax, Arg: col(0, qir.I64), Name: "hi"},
				{Fn: plan.AggAvg, Arg: col(0, qir.I64), Name: "avg"},
				{Fn: plan.AggCount, Name: "n"},
			},
		}
	}
	env := parEnv(t, 1000, -1)
	ref, err := runSeqRef(t, env, q(), 128)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	env = parEnv(t, 1000, -1)
	before := obs.NewCounter("rt_batch_rows").Load()
	rows, err := runPar(t, env, q(), 4, 128)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("batch parallel:\n%v\nsequential tuple:\n%v", rows, ref)
	}
	if got := obs.NewCounter("rt_batch_rows").Load() - before; got != 1000 {
		t.Fatalf("rt_batch_rows advanced by %d, want 1000", got)
	}
}
