package codegen

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// htHeaderSize is the runtime hash-table entry header: the chain-next
// pointer at entry-16 and the stored hash at entry-8 precede every payload,
// so entry pointers are valid over [entry-16, entry+payloadWidth).
const htHeaderSize = 16

// produceHashJoin generates the build-side pipelines (ending in hash-table
// inserts), then the probe-side pipeline whose matches flow into consume.
func (c *Compiler) produceHashJoin(j *plan.HashJoin, consume consumeFn) error {
	buildSchema := j.Build.Schema()
	nkeys := len(j.BuildKeys)

	// Payload layout: widened keys, then all build-side columns.
	var slotTypes []qir.Type
	for _, k := range j.BuildKeys {
		slotTypes = append(slotTypes, widened(k.Type()))
	}
	for _, col := range buildSchema {
		slotTypes = append(slotTypes, col.Type)
	}
	layout := layoutRow(slotTypes)
	htOff := c.allocState(8)

	// Build side. The sink also emits this pipeline's setup (create the
	// hash table) and cleanup (finalize the bucket directory) — the sink
	// closure runs while the enclosing pipeline's builders are active.
	c.pushOp(joinProv(j, "build"))
	var bc *batchChain
	if c.opts.Batch {
		bc = c.batchBuildChain(j)
	}
	if bc != nil {
		spec, err := c.buildJoinSpec(j, bc, layout)
		if err != nil {
			c.popOp()
			return err
		}
		c.emitBatchPipeline(bc, spec, SinkBuild, htOff,
			func(sb *qir.Builder) {
				width := sb.ConstInt(qir.I64, layout.width)
				handle := sb.Call(qir.I64, rt.FnHTCreate, width)
				storeStateHandle(sb, htOff, handle)
			},
			func(cb *qir.Builder) {
				cb.Call(qir.Void, rt.FnHTFinal, loadStateHandle(cb, htOff))
			})
		c.popOp()
		return c.produceJoinProbe(j, layout, htOff, consume)
	}
	err := c.produce(j.Build, func(rc *rowCtx) error {
		sb := c.setup
		width := sb.ConstInt(qir.I64, layout.width)
		handle := sb.Call(qir.I64, rt.FnHTCreate, width)
		storeStateHandle(sb, htOff, handle)
		cb := c.cleanup
		cb.Call(qir.Void, rt.FnHTFinal, loadStateHandle(cb, htOff))
		c.pipe.Sink = SinkBuild
		c.pipe.SinkOff = htOff

		b := rc.b
		hash, keyVals, err := c.hashKeys(rc, j.BuildKeys)
		if err != nil {
			return err
		}
		h := loadStateHandle(b, htOff)
		p := b.Call(qir.Ptr, rt.FnHTInsert, h, hash)
		c.notePtrFact(b, p, htHeaderSize, layout.width, false)
		for i, kv := range keyVals {
			layout.store(b, p, i, widen(b, j.BuildKeys[i].Type(), kv))
		}
		for i := range buildSchema {
			layout.store(b, p, nkeys+i, rc.col(i))
		}
		return nil
	})
	c.popOp()
	if err != nil {
		return err
	}
	return c.produceJoinProbe(j, layout, htOff, consume)
}

// produceJoinProbe generates the probe-side pipeline of a hash join; the
// build side (tuple or batch) has already filled the table at htOff.
func (c *Compiler) produceJoinProbe(j *plan.HashJoin, layout rowLayout, htOff int64, consume consumeFn) error {
	buildSchema := j.Build.Schema()
	probeSchema := j.Probe.Schema()
	nkeys := len(j.BuildKeys)

	c.pushOp(joinProv(j, "probe"))
	defer c.popOp()
	return c.produce(j.Probe, func(rc *rowCtx) error {
		b := rc.b
		hash, keyVals, err := c.hashKeys(rc, j.ProbeKeys)
		if err != nil {
			return err
		}
		h := loadStateHandle(b, htOff)
		first := b.Call(qir.Ptr, rt.FnHTLookup, h, hash)
		c.notePtrFact(b, first, htHeaderSize, layout.width, true)
		startBlk := b.Block()

		head := b.NewBlock()
		body := b.NewBlock()
		match := b.NewBlock()
		chainLatch := b.NewBlock()
		b.Br(head)

		b.SetBlock(head)
		p := b.Phi(qir.Ptr, startBlk, first)
		c.notePtrFact(b, p, htHeaderSize, layout.width, true)
		null := b.Null()
		done := b.ICmp(qir.CmpEQ, p, null)
		b.CondBr(done, rc.latch, body)

		b.SetBlock(body)
		ehashAddr := b.GEP(p, -8, qir.NoValue, 0)
		ehash := b.Load(qir.I64, ehashAddr)
		hashEq := b.ICmp(qir.CmpEQ, ehash, hash)
		keyCmp := b.NewBlock()
		b.CondBr(hashEq, keyCmp, chainLatch)
		b.SetBlock(keyCmp)
		for i, kv := range keyVals {
			stored := layout.load(b, p, i)
			probe := widen(b, j.ProbeKeys[i].Type(), kv)
			var eq qir.Value
			if j.ProbeKeys[i].Type() == qir.Str {
				r := b.Call(qir.I64, rt.FnStrEq, stored, probe)
				eq = b.Convert(qir.OpTrunc, qir.I1, r)
			} else {
				eq = b.ICmp(qir.CmpEQ, stored, probe)
			}
			next := b.NewBlock()
			b.CondBr(eq, next, chainLatch)
			b.SetBlock(next)
		}
		b.Br(match)

		b.SetBlock(match)
		nbuild := len(buildSchema)
		cols := cachedCols(nbuild+len(probeSchema), func(i int) qir.Value {
			if i < nbuild {
				v := layout.load(b, p, nkeys+i)
				return v
			}
			return rc.col(i - nbuild)
		})
		inner := &rowCtx{b: b, col: cols, latch: chainLatch}
		if err := consume(inner); err != nil {
			return err
		}
		if !b.Terminated() {
			b.Br(chainLatch)
		}

		// chainLatch is emitted last so the builder finishes in a
		// terminated block; the producer's Terminated check then skips
		// the fall-through branch.
		b.SetBlock(chainLatch)
		nxtAddr := b.GEP(p, -16, qir.NoValue, 0)
		nxt := b.Load(qir.Ptr, nxtAddr)
		c.notePtrFact(b, nxt, htHeaderSize, layout.width, true)
		b.AddPhiArg(p, chainLatch, nxt)
		b.Br(head)
		return nil
	})
}

// produceGroupBy generates the input pipeline with an aggregation sink,
// then a group-scan pipeline feeding consume.
func (c *Compiler) produceGroupBy(g *plan.GroupBy, consume consumeFn) error {
	// Aggregate state layout: widened keys, then per-aggregate slots
	// (Avg takes sum+count).
	var slotTypes []qir.Type
	for _, k := range g.Keys {
		slotTypes = append(slotTypes, widened(k.Type()))
	}
	aggSlot := make([]int, len(g.Aggs)) // slot index of each aggregate
	for i := range g.Aggs {
		a := &g.Aggs[i]
		aggSlot[i] = len(slotTypes)
		switch a.Fn {
		case plan.AggCount:
			slotTypes = append(slotTypes, qir.I64)
		case plan.AggSum:
			slotTypes = append(slotTypes, sumType(a.Arg.Type()))
		case plan.AggMin, plan.AggMax:
			slotTypes = append(slotTypes, widened(a.Arg.Type()))
		case plan.AggAvg:
			slotTypes = append(slotTypes, sumType(a.Arg.Type()), qir.I64)
		}
	}
	layout := layoutRow(slotTypes)
	htOff := c.allocState(8)

	// With the parallel executor enabled, every aggregation pipeline gets a
	// partition-merge function (generated up front so its index is stable
	// regardless of what the input subtree emits).
	mergeFn := -1
	if c.opts.Parallel {
		mf, err := c.genAggMerge(g, layout, aggSlot, htOff)
		if err != nil {
			return err
		}
		mergeFn = mf
	}
	noPar := hasF64Sum(g) // float sums are order-sensitive

	var bc *batchChain
	if c.opts.Batch {
		bc = c.batchAggChain(g)
	}
	if bc != nil {
		spec, err := c.buildAggSpec(g, bc, layout, aggSlot)
		if err != nil {
			return err
		}
		c.emitBatchPipeline(bc, spec, SinkAgg, htOff,
			func(sb *qir.Builder) {
				width := sb.ConstInt(qir.I64, layout.width)
				handle := sb.Call(qir.I64, rt.FnAggCreate, width)
				storeStateHandle(sb, htOff, handle)
			}, nil)
		c.pipe.MergeFn = mergeFn
		c.pipe.NoParallel = noPar
		return c.produceGroupScan(g, layout, aggSlot, htOff, consume)
	}

	err := c.produce(g.Input, func(rc *rowCtx) error {
		sb := c.setup
		width := sb.ConstInt(qir.I64, layout.width)
		handle := sb.Call(qir.I64, rt.FnAggCreate, width)
		storeStateHandle(sb, htOff, handle)
		c.pipe.Sink = SinkAgg
		c.pipe.SinkOff = htOff
		c.pipe.MergeFn = mergeFn
		c.pipe.NoParallel = c.pipe.NoParallel || noPar

		b := rc.b
		hash, keyVals, err := c.hashKeys(rc, g.Keys)
		if err != nil {
			return err
		}
		argVals := make([]qir.Value, len(g.Aggs))
		for i := range g.Aggs {
			if g.Aggs[i].Arg != nil {
				v, err := c.evalExpr(rc, g.Aggs[i].Arg)
				if err != nil {
					return err
				}
				argVals[i] = v
			}
		}
		h := loadStateHandle(b, htOff)
		first := b.Call(qir.Ptr, rt.FnHTLookup, h, hash)
		c.notePtrFact(b, first, htHeaderSize, layout.width, true)
		startBlk := b.Block()

		head := b.NewBlock()
		body := b.NewBlock()
		found := b.NewBlock()
		insert := b.NewBlock()
		chainLatch := b.NewBlock()
		b.Br(head)

		b.SetBlock(head)
		p := b.Phi(qir.Ptr, startBlk, first)
		c.notePtrFact(b, p, htHeaderSize, layout.width, true)
		null := b.Null()
		done := b.ICmp(qir.CmpEQ, p, null)
		b.CondBr(done, insert, body)

		b.SetBlock(body)
		ehash := b.Load(qir.I64, b.GEP(p, -8, qir.NoValue, 0))
		hashEq := b.ICmp(qir.CmpEQ, ehash, hash)
		keyCmp := b.NewBlock()
		b.CondBr(hashEq, keyCmp, chainLatch)
		b.SetBlock(keyCmp)
		for i, kv := range keyVals {
			stored := layout.load(b, p, i)
			mine := widen(b, g.Keys[i].Type(), kv)
			var eq qir.Value
			if g.Keys[i].Type() == qir.Str {
				r := b.Call(qir.I64, rt.FnStrEq, stored, mine)
				eq = b.Convert(qir.OpTrunc, qir.I1, r)
			} else {
				eq = b.ICmp(qir.CmpEQ, stored, mine)
			}
			next := b.NewBlock()
			b.CondBr(eq, next, chainLatch)
			b.SetBlock(next)
		}
		b.Br(found)

		b.SetBlock(chainLatch)
		nxt := b.Load(qir.Ptr, b.GEP(p, -16, qir.NoValue, 0))
		c.notePtrFact(b, nxt, htHeaderSize, layout.width, true)
		b.AddPhiArg(p, chainLatch, nxt)
		b.Br(head)

		// Found: update aggregate state in place.
		b.SetBlock(found)
		for i := range g.Aggs {
			if err := c.emitAggUpdate(b, &g.Aggs[i], layout, aggSlot[i], p, argVals[i]); err != nil {
				return err
			}
		}
		b.Br(rc.latch)

		// Not found: insert a fresh group. This block is emitted last so
		// the sink finishes in a terminated block.
		b.SetBlock(insert)
		np := b.Call(qir.Ptr, rt.FnHTInsert, h, hash)
		c.notePtrFact(b, np, htHeaderSize, layout.width, false)
		for i, kv := range keyVals {
			layout.store(b, np, i, widen(b, g.Keys[i].Type(), kv))
		}
		for i := range g.Aggs {
			if err := c.emitAggInit(b, &g.Aggs[i], layout, aggSlot[i], np, argVals[i]); err != nil {
				return err
			}
		}
		b.Br(rc.latch)
		return nil
	})
	if err != nil {
		return err
	}

	return c.produceGroupScan(g, layout, aggSlot, htOff, consume)
}

// produceGroupScan generates the pipeline scanning the finished aggregate
// table and feeding finalized group rows to consume.
func (c *Compiler) produceGroupScan(g *plan.GroupBy, layout rowLayout, aggSlot []int, htOff int64, consume consumeFn) error {
	nkeys := len(g.Keys)
	c.beginPipeline(SrcGroups)
	c.pipe.SourceOff = htOff
	b := c.main
	schema := g.Schema()
	err := c.emitMorselLoop(func(i qir.Value, latch qir.BlockID) error {
		h := loadStateHandle(b, htOff)
		p := b.Call(qir.Ptr, rt.FnHTEntry, h, i)
		c.notePtrFact(b, p, htHeaderSize, layout.width, false)
		cols := cachedCols(len(schema), func(ci int) qir.Value {
			if ci < nkeys {
				v := layout.load(b, p, ci)
				return narrow(b, schema[ci].Type, v)
			}
			a := &g.Aggs[ci-nkeys]
			return c.emitAggFinal(b, a, layout, aggSlot[ci-nkeys], p)
		})
		rc := &rowCtx{b: b, col: cols, latch: latch}
		return consume(rc)
	})
	if err != nil {
		return err
	}
	c.endPipeline()
	return nil
}

// sumType widens small integers to I64 for running sums.
func sumType(t qir.Type) qir.Type {
	switch t {
	case qir.I1, qir.I8, qir.I16, qir.I32, qir.I64:
		return qir.I64
	}
	return t
}

// narrow truncates a widened slot value back to the schema type.
func narrow(b *qir.Builder, want qir.Type, v qir.Value) qir.Value {
	if widened(want) != want {
		return b.Convert(qir.OpTrunc, want, v)
	}
	return v
}

func (c *Compiler) emitAggInit(b *qir.Builder, a *plan.AggExpr, l rowLayout, slot int, p, arg qir.Value) error {
	switch a.Fn {
	case plan.AggCount:
		l.store(b, p, slot, b.ConstInt(qir.I64, 1))
	case plan.AggSum:
		l.store(b, p, slot, c.toSum(b, a.Arg.Type(), arg))
	case plan.AggMin, plan.AggMax:
		l.store(b, p, slot, widen(b, a.Arg.Type(), arg))
	case plan.AggAvg:
		l.store(b, p, slot, c.toSum(b, a.Arg.Type(), arg))
		l.store(b, p, slot+1, b.ConstInt(qir.I64, 1))
	default:
		return fmt.Errorf("codegen: bad aggregate %d", a.Fn)
	}
	return nil
}

// toSum converts an aggregate argument to its running-sum representation.
func (c *Compiler) toSum(b *qir.Builder, t qir.Type, v qir.Value) qir.Value {
	st := sumType(t)
	if st != t && st == qir.I64 {
		return b.Convert(qir.OpSExt, qir.I64, v)
	}
	return v
}

func (c *Compiler) emitAggUpdate(b *qir.Builder, a *plan.AggExpr, l rowLayout, slot int, p, arg qir.Value) error {
	switch a.Fn {
	case plan.AggCount:
		cur := l.load(b, p, slot)
		one := b.ConstInt(qir.I64, 1)
		l.store(b, p, slot, b.Bin(qir.OpAdd, cur, one))
	case plan.AggSum:
		cur := l.load(b, p, slot)
		v := c.toSum(b, a.Arg.Type(), arg)
		if a.Arg.Type() == qir.F64 {
			l.store(b, p, slot, b.Bin(qir.OpFAdd, cur, v))
		} else {
			l.store(b, p, slot, b.Bin(qir.OpSAddTrap, cur, v))
		}
	case plan.AggMin, plan.AggMax:
		cur := l.load(b, p, slot)
		v := widen(b, a.Arg.Type(), arg)
		pred := qir.CmpSLT
		if a.Fn == plan.AggMax {
			pred = qir.CmpSGT
		}
		var better qir.Value
		if a.Arg.Type() == qir.F64 {
			better = b.FCmp(pred, v, cur)
		} else if a.Arg.Type() == qir.Str {
			return fmt.Errorf("codegen: min/max over strings not supported")
		} else {
			better = b.ICmp(pred, v, cur)
		}
		l.store(b, p, slot, b.Select(better, v, cur))
	case plan.AggAvg:
		cur := l.load(b, p, slot)
		v := c.toSum(b, a.Arg.Type(), arg)
		if a.Arg.Type() == qir.F64 {
			l.store(b, p, slot, b.Bin(qir.OpFAdd, cur, v))
		} else {
			l.store(b, p, slot, b.Bin(qir.OpSAddTrap, cur, v))
		}
		cnt := l.load(b, p, slot+1)
		one := b.ConstInt(qir.I64, 1)
		l.store(b, p, slot+1, b.Bin(qir.OpAdd, cnt, one))
	default:
		return fmt.Errorf("codegen: bad aggregate %d", a.Fn)
	}
	return nil
}

func (c *Compiler) emitAggFinal(b *qir.Builder, a *plan.AggExpr, l rowLayout, slot int, p qir.Value) qir.Value {
	switch a.Fn {
	case plan.AggCount, plan.AggSum:
		return l.load(b, p, slot)
	case plan.AggMin, plan.AggMax:
		v := l.load(b, p, slot)
		return narrow(b, a.Type(), v)
	case plan.AggAvg:
		sum := l.load(b, p, slot)
		cnt := l.load(b, p, slot+1)
		if a.Arg.Type() == qir.F64 {
			fcnt := b.Convert(qir.OpSIToFP, qir.F64, cnt)
			return b.Bin(qir.OpFDiv, sum, fcnt)
		}
		if sumType(a.Arg.Type()) == qir.I128 {
			c128 := b.Convert(qir.OpSExt, qir.I128, cnt)
			return b.Call(qir.I128, rt.FnI128Div, sum, c128)
		}
		return b.Bin(qir.OpSDiv, sum, cnt)
	}
	panic("codegen: bad aggregate")
}

// produceSort generates the input pipeline materializing rows into a vector,
// sorts it in the cleanup function (via a generated comparator for multi-key
// or non-integer orders), and scans the sorted vector in a new pipeline.
func (c *Compiler) produceSort(s *plan.Sort, consume consumeFn) error {
	schema := s.Input.Schema()
	nkeys := len(s.Keys)

	var slotTypes []qir.Type
	for _, k := range s.Keys {
		slotTypes = append(slotTypes, widened(k.E.Type()))
	}
	for _, col := range schema {
		slotTypes = append(slotTypes, col.Type)
	}
	layout := layoutRow(slotTypes)
	vecOff := c.allocState(8)

	// The comparator (if needed) is an ordinary extra function of the
	// module, generated up front so the sink can reference it.
	single := nkeys == 1 && widened(s.Keys[0].E.Type()) == qir.I64
	cmpIdx := -1
	if !single {
		var err error
		cmpIdx, err = c.genComparator(s, layout)
		if err != nil {
			return err
		}
	}

	err := c.produce(s.Input, func(rc *rowCtx) error {
		// Pipeline setup: create the vector. Cleanup: sort it, using
		// the sort_i64 fast path for a single integer key and a
		// generated comparator callback otherwise (the runtime-callback
		// case from the paper).
		sb := c.setup
		width := sb.ConstInt(qir.I64, layout.width)
		handle := sb.Call(qir.I64, rt.FnVecCreate, width)
		storeStateHandle(sb, vecOff, handle)
		c.pipe.Sink = SinkVec
		c.pipe.SinkOff = vecOff
		cb := c.cleanup
		if single {
			h := loadStateHandle(cb, vecOff)
			keyOff := cb.ConstInt(qir.I64, layout.offs[0])
			desc := cb.ConstInt(qir.I64, 0)
			if s.Keys[0].Desc {
				desc = cb.ConstInt(qir.I64, 1)
			}
			cb.Call(qir.Void, rt.FnSortI64, h, keyOff, desc)
		} else {
			h := loadStateHandle(cb, vecOff)
			fn := cb.FuncAddr(cmpIdx)
			cb.Call(qir.Void, rt.FnSortCB, h, fn)
		}

		b := rc.b
		h := loadStateHandle(b, vecOff)
		slot := b.Call(qir.Ptr, rt.FnVecAppend, h)
		c.notePtrFact(b, slot, 0, layout.width, false)
		for i, k := range s.Keys {
			v, err := c.evalExpr(rc, k.E)
			if err != nil {
				return err
			}
			layout.store(b, slot, i, widen(b, k.E.Type(), v))
		}
		for i := range schema {
			layout.store(b, slot, nkeys+i, rc.col(i))
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Scan pipeline over the sorted vector.
	c.beginPipeline(SrcVector)
	c.pipe.SourceOff = vecOff
	b := c.main
	h := loadStateHandle(b, vecOff)
	base := b.Call(qir.Ptr, rt.FnVecData, h)
	err = c.emitMorselLoop(func(i qir.Value, latch qir.BlockID) error {
		p := b.GEP(base, 0, i, layout.width)
		cols := cachedCols(len(schema), func(ci int) qir.Value {
			return layout.load(b, p, nkeys+ci)
		})
		rc := &rowCtx{b: b, col: cols, latch: latch}
		return consume(rc)
	})
	if err != nil {
		return err
	}
	c.endPipeline()
	return nil
}

// genComparator emits the sort comparator function: (a ptr, b ptr) -> i64
// negative/zero/positive, comparing the widened key slots in order.
func (c *Compiler) genComparator(s *plan.Sort, layout rowLayout) (int, error) {
	idx := len(c.mod.Funcs)
	b := qir.NewFunc(c.mod, fmt.Sprintf("%s_cmp%d", c.name, idx), qir.I64, qir.Ptr, qir.Ptr)
	c.setProv(idx, -1, "comparator")
	pa, pb := b.Param(0), b.Param(1)
	c.notePtrFact(b, pa, 0, layout.width, false)
	c.notePtrFact(b, pb, 0, layout.width, false)
	for i, k := range s.Keys {
		va := layout.load(b, pa, i)
		vb := layout.load(b, pb, i)
		neg, pos := int64(-1), int64(1)
		if k.Desc {
			neg, pos = 1, -1
		}
		t := widened(k.E.Type())
		switch t {
		case qir.Str:
			cv := b.Call(qir.I64, rt.FnStrCmp, va, vb)
			zero := b.ConstInt(qir.I64, 0)
			ne := b.ICmp(qir.CmpNE, cv, zero)
			retBlk := b.NewBlock()
			cont := b.NewBlock()
			b.CondBr(ne, retBlk, cont)
			b.SetBlock(retBlk)
			if k.Desc {
				zero2 := b.ConstInt(qir.I64, 0)
				r := b.Bin(qir.OpSub, zero2, cv)
				b.Ret(r)
			} else {
				b.Ret(cv)
			}
			b.SetBlock(cont)
		case qir.F64, qir.I64, qir.I128:
			var lt, gt qir.Value
			if t == qir.F64 {
				lt = b.FCmp(qir.CmpSLT, va, vb)
				gt = b.FCmp(qir.CmpSGT, va, vb)
			} else {
				lt = b.ICmp(qir.CmpSLT, va, vb)
				gt = b.ICmp(qir.CmpSGT, va, vb)
			}
			ltBlk := b.NewBlock()
			geBlk := b.NewBlock()
			gtBlk := b.NewBlock()
			cont := b.NewBlock()
			b.CondBr(lt, ltBlk, geBlk)
			b.SetBlock(ltBlk)
			b.Ret(b.ConstInt(qir.I64, neg))
			b.SetBlock(geBlk)
			b.CondBr(gt, gtBlk, cont)
			b.SetBlock(gtBlk)
			b.Ret(b.ConstInt(qir.I64, pos))
			b.SetBlock(cont)
		default:
			return 0, fmt.Errorf("codegen: cannot sort by %s", t)
		}
	}
	b.Ret(b.ConstInt(qir.I64, 0))
	return idx, nil
}
