package codegen

import (
	"fmt"
	"strings"

	"qcc/internal/plan"
	"qcc/internal/qir"
)

// provEntry is one operator on the code generator's operator-path stack. The
// stack mirrors the produce() recursion (root at the bottom, current leaf on
// top), so at the moment a pipeline is opened the stack holds exactly the
// operator chain the pipeline implements.
type provEntry struct {
	label string // operator label, e.g. "scan(lineitem)"
	sql   string // best-effort SQL fragment of the operator
	// breaker marks full pipeline breakers: a pipeline's operator path is
	// truncated at the nearest enclosing breaker (which is its sink).
	breaker bool
}

// provOf maps a plan node to its stack entry. HashJoin is handled inside
// produceHashJoin because it is a breaker on the build side only.
func provOf(n plan.Node) (provEntry, bool) {
	switch x := n.(type) {
	case *plan.Scan:
		sql := "FROM " + x.Table
		if x.Filter != nil {
			sql += " WHERE " + x.Filter.String()
		}
		return provEntry{label: "scan(" + x.Table + ")", sql: sql}, true
	case *plan.Select:
		return provEntry{label: "select", sql: "WHERE " + x.Pred.String()}, true
	case *plan.Project:
		parts := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			parts[i] = e.String()
		}
		return provEntry{label: "project", sql: "SELECT " + strings.Join(parts, ", ")}, true
	case *plan.GroupBy:
		parts := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			parts[i] = k.String()
		}
		return provEntry{label: "groupby", sql: "GROUP BY " + strings.Join(parts, ", "), breaker: true}, true
	case *plan.Sort:
		parts := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			parts[i] = k.E.String()
			if k.Desc {
				parts[i] += " DESC"
			}
		}
		return provEntry{label: "sort", sql: "ORDER BY " + strings.Join(parts, ", "), breaker: true}, true
	case *plan.Limit:
		return provEntry{label: "limit", sql: fmt.Sprintf("LIMIT %d", x.N)}, true
	}
	return provEntry{}, false
}

// joinProv builds the hash-join stack entries. The build side ends its
// pipeline at the join (breaker); the probe side streams through it.
func joinProv(j *plan.HashJoin, side string) provEntry {
	parts := make([]string, len(j.BuildKeys))
	for i := range j.BuildKeys {
		parts[i] = j.BuildKeys[i].String() + " = " + j.ProbeKeys[i].String()
	}
	return provEntry{
		label:   "hashjoin(" + side + ")",
		sql:     "JOIN ON " + strings.Join(parts, " AND "),
		breaker: side == "build",
	}
}

func (c *Compiler) pushOp(e provEntry) { c.ops = append(c.ops, e) }
func (c *Compiler) popOp()             { c.ops = c.ops[:len(c.ops)-1] }

// provenance renders the operator path and SQL fragment for a pipeline (or
// comparator) opened with the current stack. The path runs in data-flow
// order — stack top (the pipeline's source) first — and is truncated after
// the first pipeline breaker above the source, which is the pipeline's sink.
func (c *Compiler) provenance() (op, sql string) {
	if len(c.ops) == 0 {
		return "", ""
	}
	var labels []string
	for i := len(c.ops) - 1; i >= 0; i-- {
		labels = append(labels, c.ops[i].label)
		if c.ops[i].breaker && i < len(c.ops)-1 {
			break
		}
	}
	return strings.Join(labels, " > "), c.ops[len(c.ops)-1].sql
}

// setProv stamps provenance onto a generated function.
func (c *Compiler) setProv(fn int, pipeline int, role string) {
	op, sql := c.provenance()
	c.mod.Funcs[fn].Prov = qir.Prov{Pipeline: pipeline, Operator: op, SQL: sql, Role: role}
}

// setMode stamps the execution mode ("tuple" or "batch") onto a generated
// function; it must run after setProv, which rewrites the whole Prov.
func (c *Compiler) setMode(fn int, mode string) {
	c.mod.Funcs[fn].Prov.Mode = mode
}
