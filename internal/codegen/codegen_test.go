package codegen

import (
	"fmt"
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/interp"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// testEnv builds a machine, runtime, and a small orders/customers catalog.
type testEnv struct {
	db  *rt.DB
	cat *rt.Catalog
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 32 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)

	// orders: id I64, cust I64, amount I128 (decimal cents), qty I32,
	// status Str.
	orders := cat.CreateTable("orders", 10,
		rt.ColSpec{Name: "id", Type: qir.I64},
		rt.ColSpec{Name: "cust", Type: qir.I64},
		rt.ColSpec{Name: "amount", Type: qir.I128},
		rt.ColSpec{Name: "qty", Type: qir.I32},
		rt.ColSpec{Name: "status", Type: qir.Str},
	)
	statuses := []string{"open", "shipped", "open", "shipped", "returned",
		"open", "shipped", "open", "open", "shipped"}
	for i := int64(0); i < 10; i++ {
		cat.SetInt(orders.MustCol("id"), i, i+1)
		cat.SetInt(orders.MustCol("cust"), i, i%3)
		cat.SetI128(orders.MustCol("amount"), i, rt.I128FromInt64((i+1)*150))
		cat.SetInt(orders.MustCol("qty"), i, 10-i)
		cat.SetStr(orders.MustCol("status"), i, statuses[i])
	}

	// customers: id I64, name Str.
	cust := cat.CreateTable("customers", 3,
		rt.ColSpec{Name: "id", Type: qir.I64},
		rt.ColSpec{Name: "name", Type: qir.Str},
	)
	names := []string{"alpha", "bravo", "charlie"}
	for i := int64(0); i < 3; i++ {
		cat.SetInt(cust.MustCol("id"), i, i)
		cat.SetStr(cust.MustCol("name"), i, names[i])
	}
	return &testEnv{db: db, cat: cat}
}

func ordersSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "id", Type: qir.I64},
		{Name: "cust", Type: qir.I64},
		{Name: "amount", Type: qir.I128},
		{Name: "qty", Type: qir.I32},
		{Name: "status", Type: qir.Str},
	}
}

func customersSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "id", Type: qir.I64},
		{Name: "name", Type: qir.Str},
	}
}

// runPlan compiles and executes a plan on the interpreter, returning
// canonical result lines.
func runPlan(t *testing.T, env *testEnv, name string, p plan.Node) []string {
	t.Helper()
	return runPlanMorsel(t, env, name, p, DefaultMorselSize)
}

func runPlanMorsel(t *testing.T, env *testEnv, name string, p plan.Node, morsel int64) []string {
	t.Helper()
	c, err := Compile(name, p, env.cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := interp.New()
	ex, stats, err := eng.Compile(c.Module, &backend.Env{DB: env.db, Arch: vt.VX64})
	if err != nil {
		t.Fatalf("backend compile: %v", err)
	}
	if stats.Funcs == 0 {
		t.Error("no functions compiled")
	}
	env.db.Out.Reset()
	err = RunMorsels(env.db, env.cat, c, ex.Call, morsel)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return env.db.Out.Canonical()
}

func col(i int, t qir.Type) *plan.Col { return &plan.Col{Idx: i, Ty: t} }

func TestScanProject(t *testing.T) {
	env := newTestEnv(t)
	p := &plan.Project{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Exprs: []plan.Expr{col(0, qir.I64), col(4, qir.Str)},
	}
	got := runPlan(t, env, "q", p)
	if len(got) != 10 {
		t.Fatalf("got %d rows", len(got))
	}
	if got[0] != "10|shipped" && got[0] != "1|open" {
		// canonical sorting is lexicographic: "1|open" < "10|shipped"
		t.Errorf("unexpected first row %q", got[0])
	}
}

func TestFilterComparison(t *testing.T) {
	env := newTestEnv(t)
	pred, err := plan.NewCmp(plan.CmpGT, col(3, qir.I32), &plan.ConstInt{Ty: qir.I32, V: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Project{
		Input: &plan.Select{
			Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
			Pred:  pred,
		},
		Exprs: []plan.Expr{col(0, qir.I64)},
	}
	got := runPlan(t, env, "q", p)
	// qty = 10-i > 7 → i in {0,1,2} → ids 1,2,3
	want := []string{"1", "2", "3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestScanFilterPushdown(t *testing.T) {
	env := newTestEnv(t)
	pred := &plan.Like{E: col(4, qir.Str), Pattern: "ship%"}
	p := &plan.Project{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema(), Filter: pred},
		Exprs: []plan.Expr{col(0, qir.I64)},
	}
	got := runPlan(t, env, "q", p)
	want := []string{"10", "2", "4", "7"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestDecimalArithmetic(t *testing.T) {
	env := newTestEnv(t)
	// amount * 2 for order id 1.
	two := &plan.ConstDec{V: rt.I128FromInt64(2)}
	mul, err := plan.NewArith(plan.OpMul, col(2, qir.I128), two)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := plan.NewCmp(plan.CmpEQ, col(0, qir.I64), &plan.ConstInt{Ty: qir.I64, V: 1})
	p := &plan.Project{
		Input: &plan.Select{Input: &plan.Scan{Table: "orders", Cols: ordersSchema()}, Pred: pred},
		Exprs: []plan.Expr{mul},
	}
	got := runPlan(t, env, "q", p)
	want := []string{"300"} // 150*2
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestGroupByAggregates(t *testing.T) {
	env := newTestEnv(t)
	g := &plan.GroupBy{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Keys:  []plan.Expr{col(1, qir.I64)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggCount},
			{Fn: plan.AggSum, Arg: col(3, qir.I32)},
			{Fn: plan.AggMin, Arg: col(0, qir.I64)},
			{Fn: plan.AggMax, Arg: col(0, qir.I64)},
			{Fn: plan.AggSum, Arg: col(2, qir.I128)},
		},
	}
	got := runPlan(t, env, "q", g)
	// cust = i%3: group 0: i=0,3,6,9 -> ids 1,4,7,10, qty 10,7,4,1=22,
	//   amounts 150+600+1050+1500=3300
	// group 1: i=1,4,7 -> ids 2,5,8, qty 9,6,3=18, amounts 300+750+1200=2250
	// group 2: i=2,5,8 -> ids 3,6,9, qty 8,5,2=15, amounts 450+900+1350=2700
	want := []string{
		"0|4|22|1|10|3300",
		"1|3|18|2|8|2250",
		"2|3|15|3|9|2700",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestGroupByAvg(t *testing.T) {
	env := newTestEnv(t)
	g := &plan.GroupBy{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Keys:  nil,
		Aggs: []plan.AggExpr{
			{Fn: plan.AggAvg, Arg: col(3, qir.I32)},
			{Fn: plan.AggCount},
		},
	}
	got := runPlan(t, env, "q", g)
	// qty sum = 55, count 10 → avg 5 (truncating)
	want := []string{"5|10"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestHashJoin(t *testing.T) {
	env := newTestEnv(t)
	j := &plan.HashJoin{
		Build:     &plan.Scan{Table: "customers", Cols: customersSchema()},
		Probe:     &plan.Scan{Table: "orders", Cols: ordersSchema()},
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// schema: cust.id, cust.name, o.id, o.cust, o.amount, o.qty, o.status
	p := &plan.Project{
		Input: j,
		Exprs: []plan.Expr{col(2, qir.I64), col(1, qir.Str)},
	}
	got := runPlan(t, env, "q", p)
	if len(got) != 10 {
		t.Fatalf("join produced %d rows, want 10: %v", len(got), got)
	}
	// id 1 (i=0, cust 0) joins alpha; id 2 (cust 1) joins bravo.
	wantSome := map[string]bool{"1|alpha": true, "2|bravo": true, "3|charlie": true, "10|alpha": true}
	found := 0
	for _, l := range got {
		if wantSome[l] {
			found++
		}
	}
	if found != 4 {
		t.Errorf("expected join rows missing: %v", got)
	}
}

func TestJoinDuplicateBuildKeys(t *testing.T) {
	env := newTestEnv(t)
	// Join orders with itself on cust: counts of pairs per row.
	j := &plan.HashJoin{
		Build:     &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Probe:     &plan.Scan{Table: "orders", Cols: ordersSchema()},
		BuildKeys: []plan.Expr{col(1, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	g := &plan.GroupBy{
		Input: j,
		Keys:  nil,
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	got := runPlan(t, env, "q", g)
	// group sizes 4,3,3 → pairs 16+9+9 = 34
	want := []string{"34"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSortAndLimit(t *testing.T) {
	env := newTestEnv(t)
	s := &plan.Sort{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Keys:  []plan.SortKey{{E: col(0, qir.I64), Desc: true}},
	}
	p := &plan.Project{
		Input: &plan.Limit{Input: s, N: 3},
		Exprs: []plan.Expr{col(0, qir.I64)},
	}
	got := runPlan(t, env, "q", p)
	want := []string{"10", "8", "9"} // canonical sort of {10,9,8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSortMultiKeyComparator(t *testing.T) {
	env := newTestEnv(t)
	s := &plan.Sort{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Keys: []plan.SortKey{
			{E: col(4, qir.Str)},
			{E: col(0, qir.I64), Desc: true},
		},
	}
	p := &plan.Project{
		Input: &plan.Limit{Input: s, N: 2},
		Exprs: []plan.Expr{col(0, qir.I64), col(4, qir.Str)},
	}
	got := runPlan(t, env, "q", p)
	// status sorted asc: open(ids 9,8,6,3,1 desc by id)... first two: 9, 8.
	want := []string{"8|open", "9|open"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestCaseAndBetween(t *testing.T) {
	env := newTestEnv(t)
	btw := &plan.Between{
		E:  col(0, qir.I64),
		Lo: &plan.ConstInt{Ty: qir.I64, V: 3},
		Hi: &plan.ConstInt{Ty: qir.I64, V: 5},
	}
	cs := &plan.Case{
		Cond: btw,
		Then: &plan.ConstInt{Ty: qir.I64, V: 1},
		Else: &plan.ConstInt{Ty: qir.I64, V: 0},
	}
	g := &plan.GroupBy{
		Input: &plan.Project{
			Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
			Exprs: []plan.Expr{cs},
		},
		Aggs: []plan.AggExpr{{Fn: plan.AggSum, Arg: col(0, qir.I64)}},
	}
	got := runPlan(t, env, "q", g)
	want := []string{"3"} // ids 3,4,5
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSmallMorsels(t *testing.T) {
	env := newTestEnv(t)
	g := &plan.GroupBy{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	for _, morsel := range []int64{1, 3, 10, 100} {
		got := runPlanMorsel(t, env, fmt.Sprintf("q%d", morsel), g, morsel)
		if !reflect.DeepEqual(got, []string{"10"}) {
			t.Errorf("morsel %d: got %v", morsel, got)
		}
	}
}

func TestStringJoinKeys(t *testing.T) {
	env := newTestEnv(t)
	j := &plan.HashJoin{
		Build:     &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Probe:     &plan.Scan{Table: "orders", Cols: ordersSchema()},
		BuildKeys: []plan.Expr{col(4, qir.Str)},
		ProbeKeys: []plan.Expr{col(4, qir.Str)},
	}
	g := &plan.GroupBy{
		Input: j,
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	got := runPlan(t, env, "q", g)
	// status groups: open×5, shipped×4, returned×1 → 25+16+1 = 42
	want := []string{"42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestCompiledMetadata(t *testing.T) {
	env := newTestEnv(t)
	s := &plan.Sort{
		Input: &plan.GroupBy{
			Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
			Keys:  []plan.Expr{col(1, qir.I64)},
			Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
		},
		Keys: []plan.SortKey{{E: col(1, qir.I64), Desc: true}},
	}
	c, err := Compile("meta", s, env.cat)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelines: scan->groupby, groups->sortvec, vec->output = 3.
	if len(c.Pipelines) != 3 {
		t.Fatalf("pipelines = %d, want 3", len(c.Pipelines))
	}
	if c.Pipelines[0].Source != SrcTable || c.Pipelines[1].Source != SrcGroups || c.Pipelines[2].Source != SrcVector {
		t.Errorf("pipeline sources wrong: %+v", c.Pipelines)
	}
	// 3 pipelines × 3 functions each.
	if c.NumFuncs < 9 {
		t.Errorf("NumFuncs = %d, want >= 9", c.NumFuncs)
	}
	if c.StateSize < 16 {
		t.Errorf("StateSize = %d", c.StateSize)
	}
}

func TestDecimalDivision(t *testing.T) {
	env := newTestEnv(t)
	den := &plan.ConstDec{V: rt.I128FromInt64(3)}
	div, err := plan.NewArith(plan.OpDiv, col(2, qir.I128), den)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := plan.NewCmp(plan.CmpEQ, col(0, qir.I64), &plan.ConstInt{Ty: qir.I64, V: 2})
	p := &plan.Project{
		Input: &plan.Select{Input: &plan.Scan{Table: "orders", Cols: ordersSchema()}, Pred: pred},
		Exprs: []plan.Expr{div},
	}
	got := runPlan(t, env, "q", p)
	want := []string{"100"} // 300/3
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestDecimalGroupKeys(t *testing.T) {
	env := newTestEnv(t)
	g := &plan.GroupBy{
		Input: &plan.Scan{Table: "orders", Cols: ordersSchema()},
		Keys:  []plan.Expr{col(2, qir.I128)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	got := runPlan(t, env, "q", g)
	if len(got) != 10 {
		t.Errorf("distinct amounts = %d rows, want 10: %v", len(got), got)
	}
}
