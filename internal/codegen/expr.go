package codegen

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// evalExpr emits code computing expression e for the current row. All
// arithmetic on user data uses the overflow-trapping operations; 128-bit
// operations stay as native I128 QIR values and are legalized per back-end,
// exactly the property the paper's FastISel fallback analysis hinges on.
func (c *Compiler) evalExpr(rc *rowCtx, e plan.Expr) (qir.Value, error) {
	b := rc.b
	switch x := e.(type) {
	case *plan.Col:
		return rc.col(x.Idx), nil
	case *plan.ConstInt:
		return c.noteHoistCand(b, b.ConstInt(x.Ty, x.V)), nil
	case *plan.ConstDec:
		return c.noteHoistCand(b, b.Const128(x.V.Lo, x.V.Hi)), nil
	case *plan.ConstFloat:
		return c.noteHoistCand(b, b.ConstF(x.V)), nil
	case *plan.ConstStr:
		return c.noteHoistCand(b, b.ConstStr(x.V)), nil
	case *plan.Arith:
		l, err := c.evalExpr(rc, x.L)
		if err != nil {
			return 0, err
		}
		r, err := c.evalExpr(rc, x.R)
		if err != nil {
			return 0, err
		}
		return c.evalArith(b, x, l, r)
	case *plan.Cmp:
		l, err := c.evalExpr(rc, x.L)
		if err != nil {
			return 0, err
		}
		r, err := c.evalExpr(rc, x.R)
		if err != nil {
			return 0, err
		}
		return c.evalCmp(b, x.Op, x.L.Type(), l, r)
	case *plan.Logic:
		l, err := c.evalExpr(rc, x.L)
		if err != nil {
			return 0, err
		}
		r, err := c.evalExpr(rc, x.R)
		if err != nil {
			return 0, err
		}
		if x.Op == plan.OpAnd {
			return b.Bin(qir.OpAnd, l, r), nil
		}
		return b.Bin(qir.OpOr, l, r), nil
	case *plan.Not:
		v, err := c.evalExpr(rc, x.E)
		if err != nil {
			return 0, err
		}
		one := b.ConstInt(qir.I1, 1)
		return b.Bin(qir.OpXor, v, one), nil
	case *plan.Like:
		v, err := c.evalExpr(rc, x.E)
		if err != nil {
			return 0, err
		}
		pat := c.noteHoistCand(b, b.ConstStr(x.Pattern))
		r := b.Call(qir.I64, rt.FnStrLike, v, pat)
		return b.Convert(qir.OpTrunc, qir.I1, r), nil
	case *plan.Between:
		v, err := c.evalExpr(rc, x.E)
		if err != nil {
			return 0, err
		}
		lo, err := c.evalExpr(rc, x.Lo)
		if err != nil {
			return 0, err
		}
		hi, err := c.evalExpr(rc, x.Hi)
		if err != nil {
			return 0, err
		}
		ge, err := c.evalCmp(b, plan.CmpGE, x.E.Type(), v, lo)
		if err != nil {
			return 0, err
		}
		le, err := c.evalCmp(b, plan.CmpLE, x.E.Type(), v, hi)
		if err != nil {
			return 0, err
		}
		return b.Bin(qir.OpAnd, ge, le), nil
	case *plan.Case:
		cond, err := c.evalExpr(rc, x.Cond)
		if err != nil {
			return 0, err
		}
		th, err := c.evalExpr(rc, x.Then)
		if err != nil {
			return 0, err
		}
		el, err := c.evalExpr(rc, x.Else)
		if err != nil {
			return 0, err
		}
		return b.Select(cond, th, el), nil
	case *plan.Cast:
		v, err := c.evalExpr(rc, x.E)
		if err != nil {
			return 0, err
		}
		return c.evalCast(b, x.E.Type(), x.To, v)
	default:
		return 0, fmt.Errorf("codegen: unsupported expression %T", e)
	}
}

func (c *Compiler) evalArith(b *qir.Builder, x *plan.Arith, l, r qir.Value) (qir.Value, error) {
	t := x.Type()
	if t == qir.F64 {
		switch x.Op {
		case plan.OpAdd:
			return b.Bin(qir.OpFAdd, l, r), nil
		case plan.OpSub:
			return b.Bin(qir.OpFSub, l, r), nil
		case plan.OpMul:
			return b.Bin(qir.OpFMul, l, r), nil
		case plan.OpDiv:
			return b.Bin(qir.OpFDiv, l, r), nil
		}
		return 0, fmt.Errorf("codegen: %% on floats")
	}
	switch x.Op {
	case plan.OpAdd:
		return b.Bin(qir.OpSAddTrap, l, r), nil
	case plan.OpSub:
		return b.Bin(qir.OpSSubTrap, l, r), nil
	case plan.OpMul:
		return b.Bin(qir.OpSMulTrap, l, r), nil
	case plan.OpDiv:
		if t == qir.I128 {
			return b.Call(qir.I128, rt.FnI128Div, l, r), nil
		}
		return b.Bin(qir.OpSDiv, l, r), nil
	case plan.OpMod:
		if t == qir.I128 {
			return b.Call(qir.I128, rt.FnI128Rem, l, r), nil
		}
		return b.Bin(qir.OpSRem, l, r), nil
	}
	return 0, fmt.Errorf("codegen: bad arith op %d", x.Op)
}

func (c *Compiler) evalCmp(b *qir.Builder, op plan.CmpOp, t qir.Type, l, r qir.Value) (qir.Value, error) {
	switch {
	case t == qir.Str:
		switch op {
		case plan.CmpEQ:
			eq := b.Call(qir.I64, rt.FnStrEq, l, r)
			return b.Convert(qir.OpTrunc, qir.I1, eq), nil
		case plan.CmpNE:
			eq := b.Call(qir.I64, rt.FnStrEq, l, r)
			one := b.ConstInt(qir.I64, 1)
			ne := b.Bin(qir.OpXor, eq, one)
			return b.Convert(qir.OpTrunc, qir.I1, ne), nil
		default:
			cv := b.Call(qir.I64, rt.FnStrCmp, l, r)
			zero := b.ConstInt(qir.I64, 0)
			return b.ICmp(op.QIR(), cv, zero), nil
		}
	case t == qir.F64:
		return b.FCmp(op.QIR(), l, r), nil
	default:
		return b.ICmp(op.QIR(), l, r), nil
	}
}

func (c *Compiler) evalCast(b *qir.Builder, from, to qir.Type, v qir.Value) (qir.Value, error) {
	if from == to {
		return v, nil
	}
	switch {
	case from.IsInt() && to.IsInt():
		if to.Size() > from.Size() {
			return b.Convert(qir.OpSExt, to, v), nil
		}
		return b.Convert(qir.OpTrunc, to, v), nil
	case from.IsInt() && to == qir.F64:
		return b.Convert(qir.OpSIToFP, qir.F64, v), nil
	case from == qir.F64 && to.IsInt():
		return b.Convert(qir.OpFPToSI, to, v), nil
	}
	return 0, fmt.Errorf("codegen: cannot cast %s to %s", from, to)
}

// hashKeys emits the hash computation for a key tuple: CRC32C folding per
// 64-bit word (strings hash via a runtime call) and a final long-mul-fold
// mix, matching the hash structure described in the paper.
func (c *Compiler) hashKeys(rc *rowCtx, keys []plan.Expr) (qir.Value, []qir.Value, error) {
	b := rc.b
	vals := make([]qir.Value, len(keys))
	h := b.ConstInt(qir.I64, 0)
	for i, k := range keys {
		v, err := c.evalExpr(rc, k)
		if err != nil {
			return 0, nil, err
		}
		vals[i] = v
		switch t := k.Type(); t {
		case qir.Str:
			sh := b.Call(qir.I64, rt.FnStrHash, v)
			h = b.Crc32(h, sh)
		case qir.I128:
			lo := b.Convert(qir.OpTrunc, qir.I64, v)
			sixtyFour := b.ConstInt(qir.I128, 64)
			hiw := b.Bin(qir.OpShr, v, sixtyFour)
			hi := b.Convert(qir.OpTrunc, qir.I64, hiw)
			h = b.Crc32(h, lo)
			h = b.Crc32(h, hi)
		case qir.F64:
			h = b.Crc32(h, b.Convert(qir.OpFBits, qir.I64, v))
		case qir.I64:
			h = b.Crc32(h, v)
		default:
			w := b.Convert(qir.OpSExt, qir.I64, v)
			h = b.Crc32(h, w)
		}
	}
	mix := b.ConstInt(qir.I64, 0x2545F4914F6CDD1D)
	h = b.LMulFold(h, mix)
	return h, vals, nil
}

// widened returns the storage type of a key slot: small integers widen to
// I64 so key comparison and sorting operate on uniform slots.
func widened(t qir.Type) qir.Type {
	switch t {
	case qir.I1, qir.I8, qir.I16, qir.I32:
		return qir.I64
	}
	return t
}

// widen emits the conversion of v to its widened slot type.
func widen(b *qir.Builder, t qir.Type, v qir.Value) qir.Value {
	if widened(t) != t {
		return b.Convert(qir.OpSExt, qir.I64, v)
	}
	return v
}

// rowLayout assigns payload slot offsets for a list of types.
type rowLayout struct {
	offs  []int64
	types []qir.Type
	width int64
}

// layoutRow computes a payload layout; every slot is 8 or 16 bytes.
func layoutRow(types []qir.Type) rowLayout {
	l := rowLayout{types: types}
	for _, t := range types {
		l.offs = append(l.offs, l.width)
		if t.Is128() {
			l.width += 16
		} else {
			l.width += 8
		}
	}
	if l.width == 0 {
		l.width = 8
	}
	return l
}

// store emits a store of slot i of the layout at base.
func (l *rowLayout) store(b *qir.Builder, base qir.Value, i int, v qir.Value) {
	addr := b.GEP(base, l.offs[i], qir.NoValue, 0)
	b.Store(addr, v)
}

// load emits a load of slot i of the layout at base.
func (l *rowLayout) load(b *qir.Builder, base qir.Value, i int) qir.Value {
	addr := b.GEP(base, l.offs[i], qir.NoValue, 0)
	return b.Load(l.types[i], addr)
}
