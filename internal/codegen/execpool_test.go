package codegen

import (
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/direct"
	"qcc/internal/obs"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// runParPooled is runPar routed through a persistent ExecPool.
func runParPooled(t *testing.T, env *testEnv, pool *ExecPool, p plan.Node, jobs int, morsel int64) ([]string, error) {
	t.Helper()
	c, err := CompileOpts("q", p, env.cat, Options{Elim: true, Batch: true, Parallel: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := direct.New()
	ex, _, err := eng.Compile(c.Module, &backend.Env{DB: env.db, Arch: vt.VX64})
	if err != nil {
		t.Fatalf("backend compile: %v", err)
	}
	mod := ex.(interface{ Module() *vm.Module }).Module()
	env.db.Out.Reset()
	runErr := RunParallel(env.db, env.cat, c, ex.Call,
		ExecOptions{Jobs: jobs, Module: mod, MorselSize: morsel, ArenaMB: 1, Pool: pool})
	return env.db.Out.Ordered(), runErr
}

// TestExecPoolReusedAcrossQueries: a pool created before the checkpoint must
// survive per-query ResetToCheckpoint and be re-armed (not rebuilt) for each
// RunParallel call, with results identical to sequential execution.
func TestExecPoolReusedAcrossQueries(t *testing.T) {
	env := parEnv(t, 4096, -1)
	pool := NewExecPool(env.db, 4, 1)
	if pool == nil {
		t.Fatal("NewExecPool returned nil with ample heap room")
	}
	if pool.Jobs() != 4 {
		t.Fatalf("Jobs=%d, want 4", pool.Jobs())
	}
	env.db.Checkpoint()

	ref, err := runSeqRef(t, env, sumPlan(), 64)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	env.db.ResetToCheckpoint()

	for round := 0; round < 3; round++ {
		reusesBefore := ctrPoolReuses.Load()
		workersBefore := obs.NewCounter("exec_workers").Load()
		rows, err := runParPooled(t, env, pool, sumPlan(), 1 /* pool.Jobs overrides */, 64)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("round %d: pooled %v, sequential %v", round, rows, ref)
		}
		if ctrPoolReuses.Load() == reusesBefore {
			t.Fatalf("round %d: pool not acquired (exec_pool_reuses unchanged)", round)
		}
		if obs.NewCounter("exec_workers").Load() == workersBefore {
			t.Fatalf("round %d: pooled run never dispatched to workers", round)
		}
		// The per-query teardown the benchmark harness performs: the pool's
		// arenas sit below the checkpoint mark, so this must not free them.
		env.db.ResetToCheckpoint()
	}

	// A second plan shape through the same pool: re-arming must rebind the
	// new module's runtime imports, not replay the old query's.
	proj := &plan.Project{
		Input: &plan.Scan{Table: "big", Cols: bigSchema()},
		Exprs: []plan.Expr{col(0, qir.I64)},
	}
	refP, err := runSeqRef(t, env, proj, 64)
	if err != nil {
		t.Fatalf("seq project: %v", err)
	}
	env.db.ResetToCheckpoint()
	rows, err := runParPooled(t, env, pool, proj, 1, 64)
	if err != nil {
		t.Fatalf("pooled project: %v", err)
	}
	if !reflect.DeepEqual(rows, refP) {
		t.Fatalf("pooled project %v, sequential %v", rows, refP)
	}
}

// TestExecPoolForeignDBIgnored: passing a pool built for another DB must not
// corrupt execution — RunParallel detects the mismatch and falls back to
// per-query workers.
func TestExecPoolForeignDBIgnored(t *testing.T) {
	other := parEnv(t, 256, -1)
	foreign := NewExecPool(other.db, 2, 1)
	if foreign == nil {
		t.Fatal("pool construction failed")
	}

	env := parEnv(t, 4096, -1)
	ref, err := runSeqRef(t, env, sumPlan(), 64)
	if err != nil {
		t.Fatalf("seq run: %v", err)
	}
	reusesBefore := ctrPoolReuses.Load()
	rows, err := runParPooled(t, env, foreign, sumPlan(), 4, 64)
	if err != nil {
		t.Fatalf("run with foreign pool: %v", err)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("foreign-pool run %v, sequential %v", rows, ref)
	}
	if ctrPoolReuses.Load() != reusesBefore {
		t.Fatal("foreign pool was acquired; it belongs to a different DB")
	}
}
