package codegen

import (
	"qcc/internal/obs"
	"qcc/internal/rt"
	"qcc/internal/vm"
)

var ctrPoolReuses = obs.NewCounter("exec_pool_reuses")

// ExecPool is a persistent morsel-executor worker pool: the per-worker
// arenas, machines, and scratch runtimes that RunParallel would otherwise
// build from scratch on every call are carved and constructed once, then
// re-armed (heap reset, handle/intern re-sync, runtime rebind) per query.
// Fan-out cost drops from arena allocation + machine + runtime construction
// to a few pointer resets, which matters exactly in the plan-cache regime
// where compilation is already amortized and per-query overhead dominates.
//
// Create the pool before db.Checkpoint(): the arenas must sit below the
// checkpoint mark or per-query ResetToCheckpoint would free them. The pool
// is single-owner like the DB itself — one query executes at a time.
type ExecPool struct {
	db    *rt.DB
	arena uint64
	ws    []*worker
	marks []uint64 // per-worker post-construction heap marks
}

// NewExecPool builds a persistent pool of jobs workers with arenaMB MiB
// arenas (same defaults and minimums as ExecOptions). Returns nil when jobs
// leaves nothing to pool (<= 1) or the heap cannot fit the arenas — callers
// fall back to per-query workers or sequential execution.
func NewExecPool(db *rt.DB, jobs, arenaMB int) *ExecPool {
	if jobs <= 1 {
		return nil
	}
	arena := uint64(arenaMB)
	if arena == 0 {
		arena = defaultArenaMB
	}
	if arena < 2 {
		arena = 2
	}
	arena <<= 20
	if db.M.HeapRoom() < uint64(jobs)*arena+(1<<20) {
		return nil
	}
	pl := &ExecPool{db: db, arena: arena}
	for i := 0; i < jobs; i++ {
		base := db.M.Alloc(arena)
		wm := vm.NewWorker(db.M, base, base+arena)
		wdb := db.NewWorkerDB(wm)
		pl.ws = append(pl.ws, &worker{m: wm, db: wdb})
		pl.marks = append(pl.marks, wm.HeapMark())
	}
	return pl
}

// Jobs returns the pool's worker count.
func (pl *ExecPool) Jobs() int { return len(pl.ws) }

// acquire re-arms the pool for one query: worker heaps reset to their
// post-construction marks, worker runtimes re-synced against the main DB
// (whose intern map and handle table a ResetToCheckpoint may have replaced
// since the last query), fresh per-query state allocated, and the module's
// runtime imports bound. Returns nil if a bind fails, which sends the caller
// down the sequential path.
func (pl *ExecPool) acquire(c *Compiled) []*worker {
	for i, wk := range pl.ws {
		wk.m.ResetHeapTo(pl.marks[i])
		wk.db.ResetForQuery(pl.db)
		if err := wk.db.Bind(c.Module.RTNames); err != nil {
			return nil
		}
		wk.state = wk.m.Alloc(uint64(c.StateSize))
	}
	ctrPoolReuses.Inc()
	return pl.ws
}
