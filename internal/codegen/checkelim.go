package codegen

import (
	"time"

	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/sa"
)

// CheckElimVersion tags the check-elimination pass for code-cache keying:
// the unchecked marks live in instruction Aux bits (hashed by unit keys
// already), and this version string lets cache consumers invalidate entries
// when the pass semantics themselves change. Bump on any change to the facts
// derivation or the safety proofs.
const CheckElimVersion = "sace2"

var (
	obsMemOps      = obs.NewCounter("sa.mem_ops")
	obsChecksElim  = obs.NewCounter("sa.checks_eliminated")
	obsLintFinds   = obs.NewCounter("sa.lint_findings")
	obsAnalysisNs  = obs.NewCounter("sa.analysis_ns")
	obsElimModules = obs.NewCounter("sa.modules_analyzed")
)

// ElimStats summarizes the static check-elimination pass over one module.
type ElimStats struct {
	// Enabled records whether the pass ran at all.
	Enabled bool
	// MemOps is the number of loads and stores in the module.
	MemOps int
	// Unchecked is how many of them were proven safe and marked.
	Unchecked int
	// ByReason counts eliminations per proof kind
	// (region/absolute/redundant).
	ByReason map[string]int
	// Findings holds the lint diagnostics the analysis produced as a side
	// effect; generated code is expected to produce none.
	Findings []sa.Finding
	// MaxLive is the maximum register pressure over all functions.
	MaxLive int
	// AnalysisNs is wall time spent in the analysis and rewrite.
	AnalysisNs int64
}

// Ratio returns the eliminated fraction of static memory checks.
func (s ElimStats) Ratio() float64 {
	if s.MemOps == 0 {
		return 0
	}
	return float64(s.Unchecked) / float64(s.MemOps)
}

// moduleRegions collects the absolute valid regions the catalog guarantees
// for the whole query: every column array of every loaded table.
func moduleRegions(cat *rt.Catalog) []sa.Region {
	if cat == nil {
		return nil
	}
	var regs []sa.Region
	for _, t := range cat.Tables {
		for i := range t.Cols {
			col := &t.Cols[i]
			size := t.Rows * col.Type.Size()
			if size <= 0 {
				continue
			}
			regs = append(regs, sa.Region{Base: int64(col.Base), Size: size})
		}
	}
	return regs
}

// notePtrFact records a runtime pointer contract for a value the code
// generator just emitted: v points at [v-pre, v+post) valid bytes whenever
// it is non-null (maybeNull=false additionally promises it never is).
func (c *Compiler) notePtrFact(b *qir.Builder, v qir.Value, pre, post int64, maybeNull bool) {
	f := b.Func()
	if c.out.ValFacts == nil {
		c.out.ValFacts = make(map[*qir.Func]map[qir.Value]sa.PtrFact)
	}
	m := c.out.ValFacts[f]
	if m == nil {
		m = make(map[qir.Value]sa.PtrFact)
		c.out.ValFacts[f] = m
	}
	m[v] = sa.PtrFact{Pre: pre, Post: post, MaybeNull: maybeNull}
}

// factsFor derives the sa.Facts for generated function fi from the driver
// contract: setup/main/cleanup receive the query state pointer (StateSize
// valid bytes) as parameter 0, and main's morsel bounds satisfy
// 0 <= lo <= hi <= rows(source). Comparator row pointers and hash-table
// entry pointers are covered by the ValFacts the generator recorded.
func (c *Compiled) factsFor(fi int, regions []sa.Region, cat *rt.Catalog) *sa.Facts {
	facts := sa.NewFacts()
	facts.Regions = regions
	facts.ValFacts = c.ValFacts[c.Module.Funcs[fi]]
	for pi := range c.Pipelines {
		p := &c.Pipelines[pi]
		if fi != p.SetupFn && fi != p.MainFn && fi != p.CleanupFn {
			continue
		}
		facts.ParamRegion = []int64{c.StateSize}
		if fi == p.MainFn {
			bound := sa.Interval{Lo: 0, Hi: sa.PosInf}
			if p.Source == SrcTable && cat != nil {
				if t, err := cat.Table(p.Table); err == nil {
					bound = sa.Interval{Lo: 0, Hi: t.Rows}
				}
			}
			facts.ParamRange = []sa.Interval{{}, bound, bound}
		}
		break
	}
	return facts
}

// eliminateChecks runs the sa analysis over every generated function and
// marks statically proven loads/stores with qir.MemUnchecked so that every
// back-end (and the interpreter) lowers them without bounds or null checks.
func (c *Compiled) eliminateChecks(cat *rt.Catalog) {
	start := time.Now()
	stats := ElimStats{Enabled: true, ByReason: map[string]int{}}
	regions := moduleRegions(cat)
	for fi, f := range c.Module.Funcs {
		a := sa.Analyze(f, c.factsFor(fi, regions, cat))
		for _, acc := range a.Accesses() {
			stats.MemOps++
			if !acc.Safe {
				continue
			}
			c.Module.Funcs[fi].Instrs[acc.V].SetUnchecked()
			stats.Unchecked++
			stats.ByReason[acc.Reason]++
		}
		stats.Findings = append(stats.Findings, a.Lint()...)
		if a.MaxLive > stats.MaxLive {
			stats.MaxLive = a.MaxLive
		}
	}
	stats.AnalysisNs = time.Since(start).Nanoseconds()
	c.Elim = stats

	obsElimModules.Inc()
	obsMemOps.Add(int64(stats.MemOps))
	obsChecksElim.Add(int64(stats.Unchecked))
	obsLintFinds.Add(int64(len(stats.Findings)))
	obsAnalysisNs.Add(stats.AnalysisNs)
}

// Analyses returns a fresh sa.Analysis per function under the same facts the
// check-elimination pass used — for linters and verifiers that want the raw
// findings and statistics rather than the rewrite.
func (c *Compiled) Analyses(cat *rt.Catalog) []*sa.Analysis {
	regions := moduleRegions(cat)
	out := make([]*sa.Analysis, len(c.Module.Funcs))
	for fi, f := range c.Module.Funcs {
		out[fi] = sa.Analyze(f, c.factsFor(fi, regions, cat))
	}
	return out
}

// UncheckedCount counts the loads/stores in f currently marked unchecked.
func UncheckedCount(f *qir.Func) int {
	n := 0
	for i := range f.Instrs {
		if f.Instrs[i].Unchecked() {
			n++
		}
	}
	return n
}
