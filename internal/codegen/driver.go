package codegen

import (
	"fmt"

	"qcc/internal/rt"
)

// CallFunc invokes compiled function fn of the query with the given integer
// arguments. Back-ends provide this; the driver stays back-end agnostic.
type CallFunc func(fn int, args ...uint64) ([2]uint64, error)

// DefaultMorselSize is the driver's scan granularity, the morsel-driven
// parallelism unit from the paper (we execute morsels sequentially but keep
// the call structure).
const DefaultMorselSize = 16384

// Run executes a compiled query against db: it allocates and zeroes the
// query state, then for every pipeline runs setup, the main function once
// per morsel of the pipeline's source, and cleanup. Results accumulate in
// db.Out.
func Run(db *rt.DB, cat *rt.Catalog, c *Compiled, call CallFunc) error {
	return RunMorsels(db, cat, c, call, DefaultMorselSize)
}

// RunMorsels is Run with an explicit morsel size.
func RunMorsels(db *rt.DB, cat *rt.Catalog, c *Compiled, call CallFunc, morsel int64) error {
	if morsel <= 0 {
		return fmt.Errorf("codegen: bad morsel size %d", morsel)
	}
	// Bind the module's hoisted literals into the runtime constant pool;
	// compiled bodies read their values from the pool slots at execution
	// time. Idempotent and cheap when already bound.
	if err := db.BindConstPool(c.Module.Pool); err != nil {
		return err
	}
	state := db.M.Alloc(uint64(c.StateSize))
	for i := int64(0); i < c.StateSize; i++ {
		db.M.Mem[state+uint64(i)] = 0
	}
	for pi := range c.Pipelines {
		p := &c.Pipelines[pi]
		if _, err := call(p.SetupFn, state); err != nil {
			return fmt.Errorf("pipeline %d setup: %w", pi, err)
		}
		n, err := sourceRows(db, cat, p, state)
		if err != nil {
			return fmt.Errorf("pipeline %d: %w", pi, err)
		}
		for lo := int64(0); lo < n; lo += morsel {
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			if _, err := call(p.MainFn, state, uint64(lo), uint64(hi)); err != nil {
				return fmt.Errorf("pipeline %d morsel [%d,%d): %w", pi, lo, hi, err)
			}
		}
		if _, err := call(p.CleanupFn, state); err != nil {
			return fmt.Errorf("pipeline %d cleanup: %w", pi, err)
		}
	}
	return nil
}

func sourceRows(db *rt.DB, cat *rt.Catalog, p *Pipeline, state uint64) (int64, error) {
	switch p.Source {
	case SrcTable:
		t, err := cat.Table(p.Table)
		if err != nil {
			return 0, err
		}
		return t.Rows, nil
	case SrcGroups, SrcVector:
		h, err := db.ReadU64(state + uint64(p.SourceOff))
		if err != nil {
			return 0, err
		}
		return db.HandleCount(h)
	}
	return 0, fmt.Errorf("codegen: bad source kind %d", p.Source)
}
