// Package codegen translates relational query plans into QIR modules using
// data-centric code generation: the plan is decomposed into linear pipelines
// at pipeline breakers (hash-join builds, group-bys, sorts), and each
// pipeline becomes one main function that loops over its source morsel plus
// small setup and cleanup functions — the code structure the paper describes
// for Umbra.
package codegen

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/sa"
)

// SourceKind tells the driver where a pipeline's input rows come from.
type SourceKind uint8

// Pipeline source kinds.
const (
	SrcTable SourceKind = iota
	SrcGroups
	SrcVector
)

// SinkKind tells the parallel executor what partition-local state a
// pipeline accumulates, and therefore how to merge it.
type SinkKind uint8

// Pipeline sink kinds. SinkNone covers pipelines whose only side effect is
// the output buffer (merged by morsel order regardless).
const (
	SinkNone SinkKind = iota
	SinkAgg
	SinkBuild
	SinkVec
)

// Pipeline is driver metadata for one generated pipeline.
type Pipeline struct {
	// SetupFn, MainFn, CleanupFn are function indices in the module;
	// setup/cleanup take (state ptr), main takes (state ptr, lo, hi).
	SetupFn, MainFn, CleanupFn int
	Source                     SourceKind
	// Table is the source table name for SrcTable pipelines.
	Table string
	// SourceOff is the state offset holding the source handle for
	// SrcGroups/SrcVector pipelines.
	SourceOff int64
	// Sink and SinkOff describe the pipeline's partition-local sink state
	// (the state offset holding its handle) for the parallel executor.
	Sink    SinkKind
	SinkOff int64
	// MergeFn is the generated aggregation-merge function index for
	// SinkAgg pipelines compiled with Options.Parallel, else -1.
	MergeFn int
	// NoParallel marks pipelines with cross-morsel sequential semantics
	// (LIMIT counters, float running sums) that must execute sequentially.
	NoParallel bool
	// Batch marks pipelines whose main function drives the vectorized
	// batch kernels instead of a tuple-at-a-time loop.
	Batch bool
}

// Compiled is the result of query compilation: a QIR module plus the
// metadata the execution driver needs.
type Compiled struct {
	Module    *qir.Module
	Pipelines []Pipeline
	StateSize int64
	// NumFuncs is the total generated function count (a headline metric
	// in the paper's benchmark setup).
	NumFuncs int
	// Elim reports what the compile-time check-elimination pass proved
	// (zero value when the pass was disabled).
	Elim ElimStats
	// Hoist reports what the constant-hoisting pass did (zero value when
	// the pass was disabled).
	Hoist HoistStats
	// ValFacts records, per function, the runtime pointer contracts the
	// code generator knows about the values it emitted (hash-table entry
	// pointers, vector slots, comparator row parameters). They feed the
	// static analysis as trusted facts.
	ValFacts map[*qir.Func]map[qir.Value]sa.PtrFact
}

// Options controls optional code-generation strategies.
type Options struct {
	// Elim runs the static check-elimination pass (on in Compile).
	Elim bool
	// Batch lowers batch-eligible SrcTable pipelines to vectorized kernel
	// calls (filters, hash build, aggregation evaluated per-morsel in the
	// runtime); ineligible pipelines keep the tuple-at-a-time loop.
	Batch bool
	// Parallel emits the per-pipeline aggregation merge functions the
	// morsel-parallel executor needs. Off by default so sequential
	// compilations stay byte-identical with and without the executor
	// built in.
	Parallel bool
	// Hoist moves query literals out of the compiled body into the module
	// constant pool (qir.OpConstPool), making the body independent of the
	// literal values so constant-only query variants share one entry in
	// the content-addressed code cache (on in Compile).
	Hoist bool
}

// Compiler holds per-query code generation state.
type Compiler struct {
	mod   *qir.Module
	cat   *rt.Catalog
	name  string
	opts  Options
	out   *Compiled
	state int64 // next free state offset

	// Current pipeline under construction.
	main    *qir.Builder
	setup   *qir.Builder
	cleanup *qir.Builder
	pipe    *Pipeline
	npipes  int

	// ops is the operator-path stack mirroring the produce() recursion;
	// see prov.go.
	ops []provEntry

	// hoistCands records, per function, the SSA values of user-supplied
	// query literals in emission order — the candidate set of the
	// constant-hoisting pass (see hoist.go). Internal constants (scan base
	// addresses, loop increments, hash mixers) are never recorded.
	hoistCands map[*qir.Func][]qir.Value
}

// noteHoistCand records v as a hoistable user literal and returns it.
func (c *Compiler) noteHoistCand(b *qir.Builder, v qir.Value) qir.Value {
	if !c.opts.Hoist {
		return v
	}
	if c.hoistCands == nil {
		c.hoistCands = make(map[*qir.Func][]qir.Value)
	}
	f := b.Func()
	c.hoistCands[f] = append(c.hoistCands[f], v)
	return v
}

// Compile lowers a validated plan into a QIR module and runs the static
// check-elimination pass over the result.
func Compile(name string, root plan.Node, cat *rt.Catalog) (*Compiled, error) {
	return CompileOpts(name, root, cat, Options{Elim: true, Hoist: true})
}

// CompileChecked is Compile with explicit control over the check-elimination
// pass; elim=false produces the fully-checked baseline (every load and store
// keeps its runtime bounds/null check).
func CompileChecked(name string, root plan.Node, cat *rt.Catalog, elim bool) (*Compiled, error) {
	return CompileOpts(name, root, cat, Options{Elim: elim, Hoist: true})
}

// CompileOpts is Compile with full strategy control.
func CompileOpts(name string, root plan.Node, cat *rt.Catalog, opts Options) (*Compiled, error) {
	if err := plan.Validate(root); err != nil {
		return nil, err
	}
	c := &Compiler{
		mod:  qir.NewModule(name),
		cat:  cat,
		name: name,
		opts: opts,
	}
	c.out = &Compiled{Module: c.mod}
	if err := c.produce(root, c.outputSink(root.Schema())); err != nil {
		return nil, err
	}
	c.out.StateSize = c.state
	if c.out.StateSize == 0 {
		c.out.StateSize = 8
	}
	c.out.NumFuncs = len(c.mod.Funcs)
	if opts.Hoist {
		// Hoisting runs before check elimination so the eliminator proves
		// safety on the rewritten IR: every check it marks redundant is
		// sound by construction under pooled constants.
		c.hoistConstants(cat)
	}
	if opts.Elim {
		c.out.eliminateChecks(cat)
	}
	if err := c.mod.VerifyModule(); err != nil {
		return nil, fmt.Errorf("codegen: generated invalid IR: %w", err)
	}
	return c.out, nil
}

// allocState reserves size bytes (8-aligned) in the query state struct.
func (c *Compiler) allocState(size int64) int64 {
	off := c.state
	c.state += (size + 7) &^ 7
	return off
}

// rowCtx is the per-row context handed to consume callbacks: a column
// accessor positioned at the current tuple and the block to branch to when
// the tuple is done or rejected.
type rowCtx struct {
	b     *qir.Builder
	col   func(i int) qir.Value
	latch qir.BlockID
}

// consumeFn emits sink code for one tuple.
type consumeFn func(rc *rowCtx) error

// cachedCols wraps a column evaluator with per-row memoization.
func cachedCols(n int, eval func(i int) qir.Value) func(i int) qir.Value {
	cache := make([]qir.Value, n)
	for i := range cache {
		cache[i] = qir.NoValue
	}
	return func(i int) qir.Value {
		if cache[i] == qir.NoValue {
			cache[i] = eval(i)
		}
		return cache[i]
	}
}

// beginPipeline opens the three functions of a new pipeline.
func (c *Compiler) beginPipeline(kind SourceKind) {
	id := c.npipes
	c.npipes++
	c.out.Pipelines = append(c.out.Pipelines, Pipeline{Source: kind, MergeFn: -1})
	c.pipe = &c.out.Pipelines[len(c.out.Pipelines)-1]
	c.pipe.SetupFn = len(c.mod.Funcs)
	c.setup = qir.NewFunc(c.mod, fmt.Sprintf("%s_p%d_setup", c.name, id), qir.Void, qir.Ptr)
	c.pipe.MainFn = len(c.mod.Funcs)
	c.main = qir.NewFunc(c.mod, fmt.Sprintf("%s_p%d_main", c.name, id), qir.Void, qir.Ptr, qir.I64, qir.I64)
	c.pipe.CleanupFn = len(c.mod.Funcs)
	c.cleanup = qir.NewFunc(c.mod, fmt.Sprintf("%s_p%d_cleanup", c.name, id), qir.Void, qir.Ptr)
	c.setProv(c.pipe.SetupFn, id, "setup")
	c.setProv(c.pipe.MainFn, id, "main")
	c.setProv(c.pipe.CleanupFn, id, "cleanup")
	c.setMode(c.pipe.SetupFn, "tuple")
	c.setMode(c.pipe.MainFn, "tuple")
	c.setMode(c.pipe.CleanupFn, "tuple")
}

// endPipeline finishes the current pipeline's setup/cleanup functions.
func (c *Compiler) endPipeline() {
	c.setup.Ret(qir.NoValue)
	c.cleanup.Ret(qir.NoValue)
}

// emitMorselLoop generates for (i = lo; i < hi; i++) { body } in the main
// function; body code runs with the loop induction value and must branch to
// latch on all paths (a trailing branch is added if the builder's current
// block is unterminated).
func (c *Compiler) emitMorselLoop(body func(i qir.Value, latch qir.BlockID) error) error {
	b := c.main
	lo, hi := b.Param(1), b.Param(2)
	head := b.NewBlock()
	bodyBlk := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()
	pre := b.Block()
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(qir.I64, pre, lo)
	cond := b.ICmp(qir.CmpSLT, i, hi)
	b.CondBr(cond, bodyBlk, exit)

	b.SetBlock(bodyBlk)
	if err := body(i, latch); err != nil {
		return err
	}
	if !b.Terminated() {
		b.Br(latch)
	}

	b.SetBlock(latch)
	one := b.ConstInt(qir.I64, 1)
	i2 := b.Bin(qir.OpAdd, i, one)
	b.AddPhiArg(i, latch, i2)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(qir.NoValue)
	return nil
}

// loadStateHandle emits a load of the u64 handle stored at state offset off.
func loadStateHandle(b *qir.Builder, off int64) qir.Value {
	addr := b.GEP(b.Param(0), off, qir.NoValue, 0)
	return b.Load(qir.I64, addr)
}

// storeStateHandle emits a store of a u64 handle to state offset off.
func storeStateHandle(b *qir.Builder, off int64, v qir.Value) {
	addr := b.GEP(b.Param(0), off, qir.NoValue, 0)
	b.Store(addr, v)
}

// produce generates the pipelines evaluating subtree n; consume emits the
// sink for each produced tuple.
func (c *Compiler) produce(n plan.Node, consume consumeFn) error {
	if e, ok := provOf(n); ok {
		c.pushOp(e)
		defer c.popOp()
	}
	switch x := n.(type) {
	case *plan.Scan:
		return c.produceScan(x, consume)
	case *plan.Select:
		return c.produce(x.Input, func(rc *rowCtx) error {
			pred, err := c.evalExpr(rc, x.Pred)
			if err != nil {
				return err
			}
			b := rc.b
			pass := b.NewBlock()
			b.CondBr(pred, pass, rc.latch)
			b.SetBlock(pass)
			return consume(rc)
		})
	case *plan.Project:
		return c.produce(x.Input, func(rc *rowCtx) error {
			inner := *rc
			var evalErr error
			cols := cachedCols(len(x.Exprs), func(i int) qir.Value {
				v, err := c.evalExpr(&inner, x.Exprs[i])
				if err != nil {
					evalErr = err
					return 0
				}
				return v
			})
			outer := &rowCtx{b: rc.b, col: cols, latch: rc.latch}
			if err := consume(outer); err != nil {
				return err
			}
			return evalErr
		})
	case *plan.HashJoin:
		return c.produceHashJoin(x, consume)
	case *plan.GroupBy:
		return c.produceGroupBy(x, consume)
	case *plan.Sort:
		return c.produceSort(x, consume)
	case *plan.Limit:
		off := c.allocState(8)
		return c.produce(x.Input, func(rc *rowCtx) error {
			// The shared row counter makes LIMIT inherently sequential.
			c.pipe.NoParallel = true
			b := rc.b
			addr := b.GEP(b.Param(0), off, qir.NoValue, 0)
			cnt := b.Load(qir.I64, addr)
			lim := b.ConstInt(qir.I64, x.N)
			ok := b.ICmp(qir.CmpSLT, cnt, lim)
			pass := b.NewBlock()
			b.CondBr(ok, pass, rc.latch)
			b.SetBlock(pass)
			one := b.ConstInt(qir.I64, 1)
			b.Store(addr, b.Bin(qir.OpAdd, cnt, one))
			return consume(rc)
		})
	default:
		return fmt.Errorf("codegen: unsupported plan node %T", n)
	}
}

// produceScan opens a table pipeline: the main function loops over rows of
// the base table in [lo, hi) and loads referenced columns lazily, with
// column base addresses baked in as constants (JIT-style).
func (c *Compiler) produceScan(s *plan.Scan, consume consumeFn) error {
	tbl, err := c.cat.Table(s.Table)
	if err != nil {
		return err
	}
	if len(tbl.Cols) != len(s.Cols) {
		return fmt.Errorf("codegen: scan of %s expects %d columns, table has %d",
			s.Table, len(s.Cols), len(tbl.Cols))
	}
	c.beginPipeline(SrcTable)
	c.pipe.Table = s.Table
	b := c.main
	err = c.emitMorselLoop(func(i qir.Value, latch qir.BlockID) error {
		cols := cachedCols(len(tbl.Cols), func(ci int) qir.Value {
			col := &tbl.Cols[ci]
			base := b.ConstInt(qir.Ptr, int64(col.Base))
			addr := b.GEP(base, 0, i, col.Type.Size())
			return c.loadTyped(b, col.Type, addr)
		})
		rc := &rowCtx{b: b, col: cols, latch: latch}
		if s.Filter != nil {
			pred, err := c.evalExpr(rc, s.Filter)
			if err != nil {
				return err
			}
			pass := b.NewBlock()
			b.CondBr(pred, pass, latch)
			b.SetBlock(pass)
		}
		return consume(rc)
	})
	if err != nil {
		return err
	}
	c.endPipeline()
	return nil
}

// loadTyped emits a load of a column value; I128/Str load as their 16-byte
// value (represented as a single QIR value of that type via OpLoad).
func (c *Compiler) loadTyped(b *qir.Builder, t qir.Type, addr qir.Value) qir.Value {
	return b.Load(t, addr)
}

// outputSink emits the result materialization calls.
func (c *Compiler) outputSink(schema []plan.ColInfo) consumeFn {
	return func(rc *rowCtx) error {
		b := rc.b
		b.Call(qir.Void, rt.FnOutBegin)
		for i, col := range schema {
			v := rc.col(i)
			switch col.Type {
			case qir.I1, qir.I8, qir.I16, qir.I32:
				v = b.Convert(qir.OpSExt, qir.I64, v)
				b.Call(qir.Void, rt.FnOutI64, v)
			case qir.I64:
				b.Call(qir.Void, rt.FnOutI64, v)
			case qir.I128:
				b.Call(qir.Void, rt.FnOutI128, v)
			case qir.F64:
				b.Call(qir.Void, rt.FnOutF64, b.Convert(qir.OpFBits, qir.I64, v))
			case qir.Str:
				b.Call(qir.Void, rt.FnOutStr, v)
			default:
				return fmt.Errorf("codegen: cannot output %s column", col.Type)
			}
		}
		b.Call(qir.Void, rt.FnOutRow)
		return nil
	}
}
