package codegen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qcc/internal/obs"
	"qcc/internal/rt"
	"qcc/internal/vm"
)

var (
	ctrExecMorsels = obs.NewCounter("exec_morsels")
	ctrExecWorkers = obs.NewCounter("exec_workers")
)

// ExecOptions configures the morsel-parallel executor.
type ExecOptions struct {
	// Jobs is the worker count; <= 1 executes every pipeline sequentially.
	Jobs int
	// Module is the compiled vm module the workers execute. nil (e.g. the
	// QIR interpreter has none) forces sequential execution.
	Module *vm.Module
	// MorselSize overrides morsel sizing for every pipeline (0 = automatic:
	// DefaultMorselSize sequentially, row-count/worker-derived in parallel).
	MorselSize int64
	// ArenaMB is the per-worker heap arena in MiB (default 4, minimum 2 —
	// the vm reserves the top 1 MiB of each arena as the worker's stack).
	ArenaMB int
	// Pool, when set (and built over the same DB), supplies persistent
	// workers re-armed per query instead of constructing arenas, machines,
	// and runtimes on every RunParallel call. Its worker count overrides
	// Jobs for the parallel path.
	Pool *ExecPool
}

const defaultArenaMB = 4

// worker is one executor lane: a machine aliasing the main machine's memory
// with heap and stack confined to a private arena, plus a scratch runtime.
type worker struct {
	m     *vm.Machine
	db    *rt.DB
	state uint64
}

// RunParallel executes a compiled query like Run, but fans eligible table
// pipelines out over opts.Jobs workers, morsel-driven: workers pull fixed
// row ranges off a shared counter, accumulate partition-local sink state and
// output rows, and the executor merges both in morsel order afterwards, so
// results are byte-identical to sequential execution regardless of worker
// count. Ineligible pipelines (non-table sources, LIMIT, float running
// sums, aggregations compiled without Options.Parallel) run sequentially
// through the same engine call path Run uses.
func RunParallel(db *rt.DB, cat *rt.Catalog, c *Compiled, call CallFunc, opts ExecOptions) error {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	pool := opts.Pool
	if pool != nil && pool.db != db {
		pool = nil // pool workers alias a different machine's memory
	}
	if pool != nil {
		jobs = pool.Jobs()
	}
	arena := uint64(opts.ArenaMB)
	if arena == 0 {
		arena = defaultArenaMB
	}
	// A worker's stack lives in the top 1 MiB of its arena (the vm's fixed
	// stack margin), so anything smaller than 2 MiB leaves no usable heap.
	if arena < 2 {
		arena = 2
	}
	arena <<= 20

	seqMorsel := int64(DefaultMorselSize)
	if opts.MorselSize > 0 {
		seqMorsel = opts.MorselSize
	}

	// Bind hoisted literals into the runtime constant pool before anything
	// executes; workers read the main pool through shared machine memory.
	if err := db.BindConstPool(c.Module.Pool); err != nil {
		return err
	}

	state := db.M.Alloc(uint64(c.StateSize))
	for i := int64(0); i < c.StateSize; i++ {
		db.M.Mem[state+uint64(i)] = 0
	}

	// Worker entry points come from the module's unwind table (function
	// index -> code offset); engines that don't register them fall back to
	// sequential execution.
	entries := map[int]int32{}
	if opts.Module != nil {
		for _, r := range opts.Module.Funcs() {
			if r.Func >= 0 {
				entries[int(r.Func)] = r.Start
			}
		}
	}

	var workers []*worker // built lazily before the first parallel pipeline
	workersFailed := false

	for pi := range c.Pipelines {
		p := &c.Pipelines[pi]
		n, err := sourceRows(db, cat, p, state)
		if err != nil {
			return fmt.Errorf("pipeline %d: %w", pi, err)
		}
		morsel := opts.MorselSize
		if morsel <= 0 {
			morsel = autoMorsel(n, jobs)
		}
		nMorsels := (n + morsel - 1) / morsel

		parallel := jobs > 1 && opts.Module != nil && nMorsels >= 2 &&
			p.Source == SrcTable && !p.NoParallel &&
			!(p.Sink == SinkAgg && p.MergeFn < 0) &&
			hasEntries(entries, p)
		if parallel && workers == nil && !workersFailed {
			if pool != nil {
				workers = pool.acquire(c)
			} else {
				workers = makeWorkers(db, c, jobs, arena)
			}
			workersFailed = workers == nil
		}
		if !parallel || workers == nil {
			if err := runPipelineSeq(p, pi, call, state, n, seqMorsel); err != nil {
				return err
			}
			continue
		}
		err = runPipelinePar(db, c, p, pi, call, opts.Module, entries, workers, state, n, morsel, nMorsels)
		if err != nil {
			return err
		}
	}
	return nil
}

// autoMorsel sizes parallel morsels: enough per-worker slices for load
// balancing (4 per worker) without dropping below a useful batch size.
func autoMorsel(n int64, jobs int) int64 {
	if jobs <= 1 || n <= 0 {
		return DefaultMorselSize
	}
	m := (n + int64(jobs*4) - 1) / int64(jobs*4)
	if m < 256 {
		m = 256
	}
	if m > DefaultMorselSize {
		m = DefaultMorselSize
	}
	return m
}

func hasEntries(entries map[int]int32, p *Pipeline) bool {
	_, s := entries[p.SetupFn]
	_, m := entries[p.MainFn]
	return s && m
}

// makeWorkers carves per-worker arenas out of the main heap and builds the
// worker machines and runtimes. Returns nil when the heap cannot fit them —
// the query then runs sequentially rather than risking arena exhaustion.
func makeWorkers(db *rt.DB, c *Compiled, jobs int, arena uint64) []*worker {
	need := uint64(jobs)*arena + uint64(c.StateSize) + (1 << 20)
	if db.M.HeapRoom() < need {
		return nil
	}
	ws := make([]*worker, jobs)
	for i := range ws {
		base := db.M.Alloc(arena)
		wm := vm.NewWorker(db.M, base, base+arena)
		wdb := db.NewWorkerDB(wm)
		if err := wdb.Bind(c.Module.RTNames); err != nil {
			return nil
		}
		ws[i] = &worker{m: wm, db: wdb, state: wm.Alloc(uint64(c.StateSize))}
	}
	return ws
}

// runPipelineSeq is the sequential per-pipeline path, identical to
// RunMorsels' inner loop.
func runPipelineSeq(p *Pipeline, pi int, call CallFunc, state uint64, n, morsel int64) error {
	if _, err := call(p.SetupFn, state); err != nil {
		return fmt.Errorf("pipeline %d setup: %w", pi, err)
	}
	for lo := int64(0); lo < n; lo += morsel {
		hi := lo + morsel
		if hi > n {
			hi = n
		}
		if _, err := call(p.MainFn, state, uint64(lo), uint64(hi)); err != nil {
			return fmt.Errorf("pipeline %d morsel [%d,%d): %w", pi, lo, hi, err)
		}
	}
	if _, err := call(p.CleanupFn, state); err != nil {
		return fmt.Errorf("pipeline %d cleanup: %w", pi, err)
	}
	return nil
}

// runPipelinePar executes one pipeline across the worker pool.
//
// Sequence: workers re-snapshot the main handle table (so earlier pipelines'
// merged sinks resolve under their baked ids), the main engine runs setup,
// then each worker replays setup against a copy of the pre-setup state —
// creating its partition-local sink under the same handle id — and pulls
// morsels off a shared counter. Afterwards output rows merge in morsel
// order and sink state merges in insertion-stamp order, reproducing the
// sequential result exactly; the earliest-morsel trap wins when workers
// trap, with output rows preceding that trap point preserved.
func runPipelinePar(db *rt.DB, c *Compiled, p *Pipeline, pi int, call CallFunc,
	mod *vm.Module, entries map[int]int32, workers []*worker,
	state uint64, n, morsel, nMorsels int64) error {

	pre := append([]byte(nil), db.M.Mem[state:state+uint64(c.StateSize)]...)
	for _, wk := range workers {
		wk.db.SyncHandles(db)
	}
	if _, err := call(p.SetupFn, state); err != nil {
		return fmt.Errorf("pipeline %d setup: %w", pi, err)
	}

	db.ShareForExec()
	defer db.EndShare()
	setupEntry := entries[p.SetupFn]
	mainEntry := entries[p.MainFn]

	var (
		next    int64
		stop    atomic.Bool
		mu      sync.Mutex
		trapM   int64 = -2 // -2: none, -1: worker setup, >= 0: morsel index
		trapErr error
		buckets = make([][][]rt.OutVal, nMorsels)
		wg      sync.WaitGroup
	)
	fail := func(m int64, err error) {
		mu.Lock()
		if trapErr == nil || m < trapM {
			trapM, trapErr = m, err
		}
		mu.Unlock()
		stop.Store(true)
	}

	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(-1, fmt.Errorf("pipeline %d: parallel worker panic (likely worker arena exhaustion; raise the arena size or run with 1 job): %v", pi, r))
				}
			}()
			wk.db.Own()
			defer wk.db.Release()
			copy(wk.m.Mem[wk.state:wk.state+uint64(len(pre))], pre)
			if _, err := wk.m.Call(mod, setupEntry, wk.state); err != nil {
				fail(-1, fmt.Errorf("pipeline %d worker setup: %w", pi, err))
				return
			}
			for !stop.Load() {
				m := atomic.AddInt64(&next, 1) - 1
				if m >= nMorsels {
					return
				}
				wk.db.SetMorsel(m)
				lo := m * morsel
				hi := lo + morsel
				if hi > n {
					hi = n
				}
				_, err := wk.m.Call(mod, mainEntry, wk.state, uint64(lo), uint64(hi))
				rows := wk.db.Out.DrainRows()
				mu.Lock()
				buckets[m] = rows
				mu.Unlock()
				if err != nil {
					fail(m, fmt.Errorf("pipeline %d morsel [%d,%d): %w", pi, lo, hi, err))
					return
				}
			}
		}(wk)
	}
	wg.Wait()

	// Fold worker machine counters into the main machine so per-query
	// instruction/branch/memop profiles stay complete.
	for _, wk := range workers {
		db.M.Executed += wk.m.Executed
		db.M.Branches += wk.m.Branches
		db.M.MemOps += wk.m.MemOps
		wk.m.Executed, wk.m.Branches, wk.m.MemOps = 0, 0, 0
	}
	ctrExecMorsels.Add(nMorsels)
	ctrExecWorkers.Add(int64(len(workers)))

	// Merge output rows in morsel order. On a trap, morsels before the
	// trapping one merge fully plus that morsel's partial rows — the rows a
	// sequential execution would have emitted before trapping.
	limit := nMorsels
	if trapErr != nil {
		limit = trapM + 1 // trapM == -1 (worker setup) merges nothing
	}
	for m := int64(0); m < limit; m++ {
		db.Out.AppendRows(buckets[m])
	}
	if trapErr != nil {
		return trapErr
	}

	wdbs := make([]*rt.DB, len(workers))
	for i, wk := range workers {
		wdbs[i] = wk.db
	}
	switch p.Sink {
	case SinkAgg:
		id, err := db.ReadU64(state + uint64(p.SinkOff))
		if err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
		addrs, err := rt.StampedHTEntries(wdbs, id)
		if err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
		for _, a := range addrs {
			if _, err := call(p.MergeFn, state, a); err != nil {
				return fmt.Errorf("pipeline %d merge: %w", pi, err)
			}
		}
	case SinkBuild:
		id, err := db.ReadU64(state + uint64(p.SinkOff))
		if err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
		if err := rt.MergeBuildHT(db, wdbs, id); err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
	case SinkVec:
		id, err := db.ReadU64(state + uint64(p.SinkOff))
		if err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
		if err := rt.MergeVector(db, wdbs, id); err != nil {
			return fmt.Errorf("pipeline %d merge: %w", pi, err)
		}
	}
	if _, err := call(p.CleanupFn, state); err != nil {
		return fmt.Errorf("pipeline %d cleanup: %w", pi, err)
	}
	return nil
}
