package codegen_test

import (
	"testing"

	"qcc/internal/codegen"
	"qcc/internal/rt"
	"qcc/internal/tpch"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// TestCheckElimRatioGate is the acceptance gate for the static
// check-elimination pass: on Q1 and Q6 at least 30% of the static memory
// checks must be discharged at compile time, and generated code must lint
// clean. The suite-wide floor below catches regressions that merely shift
// elimination work onto other queries.
func TestCheckElimRatioGate(t *testing.T) {
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 128 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	if err := tpch.Load(cat, 0.01); err != nil {
		t.Fatal(err)
	}
	gated := map[string]float64{"q1": 0.30, "q6": 0.30}
	totalOps, totalElim := 0, 0
	for _, q := range tpch.Queries() {
		c, err := codegen.Compile(q.Name, q.Build(), cat)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		e := c.Elim
		if !e.Enabled {
			t.Fatalf("%s: check elimination did not run", q.Name)
		}
		if e.MemOps == 0 {
			t.Fatalf("%s: no memory accesses classified", q.Name)
		}
		for _, f := range e.Findings {
			t.Errorf("%s: unexpected lint finding: %s", q.Name, f)
		}
		if min, ok := gated[q.Name]; ok && e.Ratio() < min {
			t.Errorf("%s: eliminated %d/%d checks (%.1f%%), gate requires >= %.0f%%",
				q.Name, e.Unchecked, e.MemOps, 100*e.Ratio(), 100*min)
		}
		totalOps += e.MemOps
		totalElim += e.Unchecked
	}
	// Suite-wide floor: the pass currently proves ~95% of all static
	// checks; a drop below 2/3 means a real analysis regression even if
	// the per-query gates still pass.
	if ratio := float64(totalElim) / float64(totalOps); ratio < 0.66 {
		t.Errorf("suite-wide elimination %d/%d (%.1f%%) below the 66%% floor",
			totalElim, totalOps, 100*ratio)
	}
}
