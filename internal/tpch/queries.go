package tpch

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Query is one benchmark query.
type Query struct {
	Name  string
	Build func() plan.Node
}

// Expression helpers (panic on type errors: the suite is static).
func col(i int, t qir.Type) *plan.Col { return &plan.Col{Idx: i, Ty: t} }

func i32v(v int64) plan.Expr  { return &plan.ConstInt{Ty: qir.I32, V: v} }
func i64v(v int64) plan.Expr  { return &plan.ConstInt{Ty: qir.I64, V: v} }
func decv(v int64) plan.Expr  { return &plan.ConstDec{V: rt.I128FromInt64(v)} }
func strv(s string) plan.Expr { return &plan.ConstStr{V: s} }

func arith(op plan.ArithOp, l, r plan.Expr) plan.Expr {
	e, err := plan.NewArith(op, l, r)
	if err != nil {
		panic(err)
	}
	return e
}

func cmp(op plan.CmpOp, l, r plan.Expr) plan.Expr {
	e, err := plan.NewCmp(op, l, r)
	if err != nil {
		panic(err)
	}
	return e
}

func and(l, r plan.Expr) plan.Expr { return &plan.Logic{Op: plan.OpAnd, L: l, R: r} }
func or(l, r plan.Expr) plan.Expr  { return &plan.Logic{Op: plan.OpOr, L: l, R: r} }

func scanL() *plan.Scan { return &plan.Scan{Table: "lineitem", Cols: lineitemSchema()} }
func scanO() *plan.Scan { return &plan.Scan{Table: "orders", Cols: ordersSchema()} }
func scanC() *plan.Scan { return &plan.Scan{Table: "customer", Cols: customerSchema()} }
func scanP() *plan.Scan { return &plan.Scan{Table: "part", Cols: partSchema()} }
func scanS() *plan.Scan { return &plan.Scan{Table: "supplier", Cols: supplierSchema()} }
func scanN() *plan.Scan { return &plan.Scan{Table: "nation", Cols: nationSchema()} }

// revenue computes extendedprice * (100 - discount) over the lineitem
// schema starting at column offset off.
func revenue(off int) plan.Expr {
	hundred := decv(100)
	disc := col(off+5, qir.I128)
	return arith(plan.OpMul, col(off+4, qir.I128), arith(plan.OpSub, hundred, disc))
}

// Queries returns the 22 query plans.
func Queries() []Query {
	return []Query{
		{"q1", q1}, {"q2", q2}, {"q3", q3}, {"q4", q4}, {"q5", q5},
		{"q6", q6}, {"q7", q7}, {"q8", q8}, {"q9", q9}, {"q10", q10},
		{"q11", q11}, {"q12", q12}, {"q13", q13}, {"q14", q14}, {"q15", q15},
		{"q16", q16}, {"q17", q17}, {"q18", q18}, {"q19", q19}, {"q20", q20},
		{"q21", q21}, {"q22", q22},
	}
}

// q1: pricing summary report — heavy decimal aggregation.
func q1() plan.Node { return q1Param(10400) }

// q2: minimum-cost supplier (simplified): part x lineitem, min price per brand.
func q2() plan.Node {
	j := &plan.HashJoin{
		Build:     scanP(),
		Probe:     scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// schema: p(0..4) ++ l(5..17)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(2, qir.Str)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggMin, Arg: col(9, qir.I128)},
			{Fn: plan.AggCount},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q3: shipping priority — 3-way join, revenue sort, limit 10.
func q3() plan.Node { return q3Param("BUILDING", 9200) }

// q4: order priority checking (simplified join form).
func q4() plan.Node {
	ords := &plan.Select{Input: scanO(), Pred: and(
		cmp(plan.CmpGE, col(4, qir.I32), i32v(9000)),
		cmp(plan.CmpLT, col(4, qir.I32), i32v(9090)))}
	late := &plan.Select{Input: scanL(), Pred: cmp(plan.CmpLT, col(10, qir.I32), col(11, qir.I32))}
	j := &plan.HashJoin{
		Build: ords, Probe: late,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(5, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q5: local supplier volume — 4-way join grouped by nation.
func q5() plan.Node {
	jcn := &plan.HashJoin{
		Build: scanN(), Probe: scanC(),
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(2, qir.I32)},
	}
	// n(0..2) ++ c(3..7)
	jo := &plan.HashJoin{
		Build: jcn, Probe: scanO(),
		BuildKeys: []plan.Expr{col(3, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// n,c (0..7) ++ o(8..13)
	j := &plan.HashJoin{
		Build: jo, Probe: scanL(),
		BuildKeys: []plan.Expr{col(8, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	// (0..13) ++ l(14..26)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(1, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(14)}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q6: forecasting revenue change — highly selective scan.
func q6() plan.Node { return q6Param(9000, 9365, 4, 6, 24) }

// q7: volume shipping (simplified 3-way join by nation pair).
func q7() plan.Node {
	js := &plan.HashJoin{
		Build: scanN(), Probe: scanS(),
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(1, qir.I32)},
	}
	// n(0..2) ++ s(3..5)
	j := &plan.HashJoin{
		Build: js, Probe: scanL(),
		BuildKeys: []plan.Expr{col(3, qir.I64)},
		ProbeKeys: []plan.Expr{col(2, qir.I64)},
	}
	// (0..5) ++ l(6..18)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(1, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(6)}, {Fn: plan.AggCount}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q8: market share (simplified): part type filter, share via case-when.
func q8() plan.Node {
	parts := &plan.Select{Input: scanP(), Pred: cmp(plan.CmpEQ, col(3, qir.Str), strv("ECONOMY ANODIZED STEEL"))}
	j := &plan.HashJoin{
		Build: parts, Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// p(0..4) ++ l(5..17)
	isBrand := cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#11"))
	share := &plan.Case{Cond: isBrand, Then: revenue(5), Else: decv(0)}
	g := &plan.GroupBy{
		Input: j,
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: share},
			{Fn: plan.AggSum, Arg: revenue(5)},
		},
	}
	return g
}

// q9: product type profit (simplified 3-way join, LIKE filter).
func q9() plan.Node {
	parts := &plan.Select{Input: scanP(), Pred: &plan.Like{E: col(1, qir.Str), Pattern: "%STEEL%"}}
	j := &plan.HashJoin{
		Build: parts, Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	js := &plan.HashJoin{
		Build: scanS(), Probe: j,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(7, qir.I64)},
	}
	// s(0..2) ++ p(3..7) ++ l(8..20)
	g := &plan.GroupBy{
		Input: js,
		Keys:  []plan.Expr{col(1, qir.I32)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(8)}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(0, qir.I32), To: qir.I64}}}}
}

// q10: returned item reporting — join + top 20 by revenue.
func q10() plan.Node {
	returned := &plan.Select{Input: scanL(), Pred: cmp(plan.CmpEQ, col(7, qir.Str), strv("R"))}
	jo := &plan.HashJoin{
		Build: scanO(), Probe: returned,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	// o(0..5) ++ l(6..18)
	jc := &plan.HashJoin{
		Build: scanC(), Probe: jo,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// c(0..4) ++ o(5..10) ++ l(11..23)
	g := &plan.GroupBy{
		Input: jc,
		Keys:  []plan.Expr{col(0, qir.I64), col(1, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(11)}},
	}
	s := &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(2, qir.I128), To: qir.I64}, Desc: true}}}
	return &plan.Limit{Input: s, N: 20}
}

// q11: important stock (simplified supplier aggregation).
func q11() plan.Node {
	j := &plan.HashJoin{
		Build: scanS(), Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(2, qir.I64)},
	}
	// s(0..2) ++ l(3..15)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(0, qir.I64)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: arith(plan.OpMul, col(7, qir.I128), col(6, qir.I128))}},
	}
	having := &plan.Select{Input: g, Pred: cmp(plan.CmpGT, col(1, qir.I128), decv(500000))}
	return &plan.Sort{Input: having, Keys: []plan.SortKey{{E: col(0, qir.I64)}}}
}

// q12: shipping mode and order priority, with case-when counting.
func q12() plan.Node {
	modes := &plan.Select{Input: scanL(), Pred: or(
		cmp(plan.CmpEQ, col(12, qir.Str), strv("MAIL")),
		cmp(plan.CmpEQ, col(12, qir.Str), strv("SHIP")))}
	j := &plan.HashJoin{
		Build: scanO(), Probe: modes,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	// o(0..5) ++ l(6..18)
	high := or(
		cmp(plan.CmpEQ, col(5, qir.Str), strv("1-URGENT")),
		cmp(plan.CmpEQ, col(5, qir.Str), strv("2-HIGH")))
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(18, qir.Str)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: &plan.Case{Cond: high, Then: i64v(1), Else: i64v(0)}},
			{Fn: plan.AggSum, Arg: &plan.Case{Cond: &plan.Not{E: high}, Then: i64v(1), Else: i64v(0)}},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q13: customer order counts, then distribution of counts.
func q13() plan.Node {
	j := &plan.HashJoin{
		Build: scanC(), Probe: scanO(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	perCust := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(0, qir.I64)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	dist := &plan.GroupBy{
		Input: perCust,
		Keys:  []plan.Expr{col(1, qir.I64)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	return &plan.Sort{Input: dist, Keys: []plan.SortKey{{E: col(1, qir.I64), Desc: true}, {E: col(0, qir.I64), Desc: true}}}
}

// q14: promotion effect — LIKE on part type with ratio components.
func q14() plan.Node {
	j := &plan.HashJoin{
		Build: scanP(), Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// p(0..4) ++ l(5..17)
	isPromo := &plan.Like{E: col(3, qir.Str), Pattern: "PROMO%"}
	g := &plan.GroupBy{
		Input: j,
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: &plan.Case{Cond: isPromo, Then: revenue(5), Else: decv(0)}},
			{Fn: plan.AggSum, Arg: revenue(5)},
		},
	}
	return g
}

// q15: top supplier — per-supplier revenue, descending, limit 1.
func q15() plan.Node { return q15Param(9800, 9890) }

// q16: parts/supplier relationship counts.
func q16() plan.Node {
	parts := &plan.Select{Input: scanP(), Pred: &plan.Not{
		E: cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#45"))}}
	j := &plan.HashJoin{
		Build: parts, Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(2, qir.Str), col(4, qir.I32)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{
		{E: col(2, qir.I64), Desc: true}, {E: col(0, qir.Str)},
	}}
}

// q17: small-quantity-order revenue for one brand.
func q17() plan.Node {
	parts := &plan.Select{Input: scanP(), Pred: cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#23"))}
	j := &plan.HashJoin{
		Build: parts, Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// p(0..4) ++ l(5..17)
	small := &plan.Select{Input: j, Pred: cmp(plan.CmpLT, col(8, qir.I128), decv(10))}
	return &plan.GroupBy{
		Input: small,
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: col(9, qir.I128)}, {Fn: plan.AggCount}},
	}
}

// q18: large-volume customers — grouped sum with HAVING and top-k.
func q18() plan.Node {
	j := &plan.HashJoin{
		Build: scanO(), Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	// o(0..5) ++ l(6..18)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(0, qir.I64), col(1, qir.I64)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: col(9, qir.I128)}},
	}
	big := &plan.Select{Input: g, Pred: cmp(plan.CmpGT, col(2, qir.I128), decv(150))}
	s := &plan.Sort{Input: big, Keys: []plan.SortKey{{E: &plan.Cast{E: col(2, qir.I128), To: qir.I64}, Desc: true}}}
	return &plan.Limit{Input: s, N: 100}
}

// q19: discounted revenue — disjunctive brand/quantity predicates.
func q19() plan.Node {
	j := &plan.HashJoin{
		Build: scanP(), Probe: scanL(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// p(0..4) ++ l(5..17)
	c1 := and(cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#12")),
		&plan.Between{E: col(8, qir.I128), Lo: decv(1), Hi: decv(11)})
	c2 := and(cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#23")),
		&plan.Between{E: col(8, qir.I128), Lo: decv(10), Hi: decv(20)})
	c3 := and(cmp(plan.CmpEQ, col(2, qir.Str), strv("Brand#34")),
		&plan.Between{E: col(8, qir.I128), Lo: decv(20), Hi: decv(30)})
	sel := &plan.Select{Input: j, Pred: or(c1, or(c2, c3))}
	return &plan.GroupBy{
		Input: sel,
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(5)}, {Fn: plan.AggCount}},
	}
}

// q20: potential part promotion (simplified): supplier quantities.
func q20() plan.Node {
	sel := &plan.Select{Input: scanL(), Pred: and(
		cmp(plan.CmpGE, col(9, qir.I32), i32v(9400)),
		cmp(plan.CmpLT, col(9, qir.I32), i32v(9750)))}
	j := &plan.HashJoin{
		Build: scanS(), Probe: sel,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(2, qir.I64)},
	}
	// s(0..2) ++ l(3..15)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(2, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: col(6, qir.I128)}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// q21: suppliers who kept orders waiting (simplified).
func q21() plan.Node {
	late := &plan.Select{Input: scanL(), Pred: cmp(plan.CmpGT, col(11, qir.I32), col(10, qir.I32))}
	j := &plan.HashJoin{
		Build: scanS(), Probe: late,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(2, qir.I64)},
	}
	// s(0..2) ++ l(3..15)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(2, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
	}
	s := &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(1, qir.I64), Desc: true}, {E: col(0, qir.Str)}}}
	return &plan.Limit{Input: s, N: 25}
}

// q22: global sales opportunity — customers without recent orders
// (simplified to an account-balance report).
func q22() plan.Node {
	rich := &plan.Select{Input: scanC(), Pred: cmp(plan.CmpGT, col(4, qir.I128), decv(400000))}
	g := &plan.GroupBy{
		Input: rich,
		Keys:  []plan.Expr{col(2, qir.I32)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggCount},
			{Fn: plan.AggSum, Arg: col(4, qir.I128)},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(0, qir.I32), To: qir.I64}}}}
}

var _ = fmt.Sprintf
