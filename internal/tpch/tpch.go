// Package tpch provides a laptop-scale synthetic analog of the TPC-H
// benchmark: the schema, a deterministic data generator parameterized by
// scale factor, and 22 query plans whose operator shapes follow the official
// queries (joins, aggregations, selective predicates, sorts). Absolute data
// volumes are far below the official 10/100 GiB scale factors, but relative
// table proportions and query structure are preserved, which is what the
// compile-time/run-time trade-off experiments depend on.
package tpch

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// rowsAt returns per-table row counts at a scale factor. SF=1 corresponds
// to 60k lineitems (1/100 of official SF1, keeping proportions).
func rowsAt(sf float64) map[string]int64 {
	n := func(base float64) int64 {
		v := int64(base * sf)
		if v < 8 {
			v = 8
		}
		return v
	}
	return map[string]int64{
		"lineitem": n(60000),
		"orders":   n(15000),
		"customer": n(1500),
		"part":     n(2000),
		"supplier": n(100),
		"nation":   25,
		"region":   5,
	}
}

// prng is a small deterministic generator.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s ^= p.s << 13
	p.s ^= p.s >> 7
	p.s ^= p.s << 17
	return p.s
}

func (p *prng) intn(n int64) int64 { return int64(p.next() % uint64(n)) }

var (
	returnFlags = []string{"A", "N", "R"}
	lineStatus  = []string{"O", "F"}
	shipModes   = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	brands      = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#23", "Brand#34", "Brand#45"}
	ptypes      = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED BRASS", "PROMO BURNISHED COPPER", "MEDIUM PLATED TIN", "SMALL BRUSHED NICKEL"}
	nations     = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regions     = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
)

// Load generates all tables at the given scale factor into the catalog.
func Load(cat *rt.Catalog, sf float64) error {
	rows := rowsAt(sf)
	rng := &prng{s: 0x9E3779B97F4A7C15}

	nLine := rows["lineitem"]
	nOrd := rows["orders"]
	nCust := rows["customer"]
	nPart := rows["part"]
	nSupp := rows["supplier"]

	region := cat.CreateTable("region", rows["region"],
		rt.ColSpec{Name: "r_regionkey", Type: qir.I32},
		rt.ColSpec{Name: "r_name", Type: qir.Str})
	for i := int64(0); i < rows["region"]; i++ {
		cat.SetInt(region.MustCol("r_regionkey"), i, i)
		cat.SetStr(region.MustCol("r_name"), i, regions[i])
	}

	nation := cat.CreateTable("nation", rows["nation"],
		rt.ColSpec{Name: "n_nationkey", Type: qir.I32},
		rt.ColSpec{Name: "n_name", Type: qir.Str},
		rt.ColSpec{Name: "n_regionkey", Type: qir.I32})
	for i := int64(0); i < rows["nation"]; i++ {
		cat.SetInt(nation.MustCol("n_nationkey"), i, i)
		cat.SetStr(nation.MustCol("n_name"), i, nations[i])
		cat.SetInt(nation.MustCol("n_regionkey"), i, i%5)
	}

	supplier := cat.CreateTable("supplier", nSupp,
		rt.ColSpec{Name: "s_suppkey", Type: qir.I64},
		rt.ColSpec{Name: "s_nationkey", Type: qir.I32},
		rt.ColSpec{Name: "s_name", Type: qir.Str})
	for i := int64(0); i < nSupp; i++ {
		cat.SetInt(supplier.MustCol("s_suppkey"), i, i)
		cat.SetInt(supplier.MustCol("s_nationkey"), i, rng.intn(25))
		cat.SetStr(supplier.MustCol("s_name"), i, fmt.Sprintf("Supplier#%09d", i))
	}

	part := cat.CreateTable("part", nPart,
		rt.ColSpec{Name: "p_partkey", Type: qir.I64},
		rt.ColSpec{Name: "p_name", Type: qir.Str},
		rt.ColSpec{Name: "p_brand", Type: qir.Str},
		rt.ColSpec{Name: "p_type", Type: qir.Str},
		rt.ColSpec{Name: "p_size", Type: qir.I32})
	for i := int64(0); i < nPart; i++ {
		cat.SetInt(part.MustCol("p_partkey"), i, i)
		cat.SetStr(part.MustCol("p_name"), i, fmt.Sprintf("part %s %d", ptypes[rng.intn(5)], i))
		cat.SetStr(part.MustCol("p_brand"), i, brands[rng.intn(int64(len(brands)))])
		cat.SetStr(part.MustCol("p_type"), i, ptypes[rng.intn(int64(len(ptypes)))])
		cat.SetInt(part.MustCol("p_size"), i, 1+rng.intn(50))
	}

	customer := cat.CreateTable("customer", nCust,
		rt.ColSpec{Name: "c_custkey", Type: qir.I64},
		rt.ColSpec{Name: "c_name", Type: qir.Str},
		rt.ColSpec{Name: "c_nationkey", Type: qir.I32},
		rt.ColSpec{Name: "c_mktsegment", Type: qir.Str},
		rt.ColSpec{Name: "c_acctbal", Type: qir.I128})
	for i := int64(0); i < nCust; i++ {
		cat.SetInt(customer.MustCol("c_custkey"), i, i)
		cat.SetStr(customer.MustCol("c_name"), i, fmt.Sprintf("Customer#%09d", i))
		cat.SetInt(customer.MustCol("c_nationkey"), i, rng.intn(25))
		cat.SetStr(customer.MustCol("c_mktsegment"), i, segments[rng.intn(5)])
		cat.SetI128(customer.MustCol("c_acctbal"), i, rt.I128FromInt64(rng.intn(1000000)-99999))
	}

	orders := cat.CreateTable("orders", nOrd,
		rt.ColSpec{Name: "o_orderkey", Type: qir.I64},
		rt.ColSpec{Name: "o_custkey", Type: qir.I64},
		rt.ColSpec{Name: "o_orderstatus", Type: qir.Str},
		rt.ColSpec{Name: "o_totalprice", Type: qir.I128},
		rt.ColSpec{Name: "o_orderdate", Type: qir.I32},
		rt.ColSpec{Name: "o_orderpriority", Type: qir.Str})
	for i := int64(0); i < nOrd; i++ {
		cat.SetInt(orders.MustCol("o_orderkey"), i, i)
		cat.SetInt(orders.MustCol("o_custkey"), i, rng.intn(nCust))
		cat.SetStr(orders.MustCol("o_orderstatus"), i, lineStatus[rng.intn(2)])
		cat.SetI128(orders.MustCol("o_totalprice"), i, rt.I128FromInt64(1000+rng.intn(50000000)))
		cat.SetInt(orders.MustCol("o_orderdate"), i, 8000+rng.intn(2500))
		cat.SetStr(orders.MustCol("o_orderpriority"), i, priorities[rng.intn(5)])
	}

	lineitem := cat.CreateTable("lineitem", nLine,
		rt.ColSpec{Name: "l_orderkey", Type: qir.I64},
		rt.ColSpec{Name: "l_partkey", Type: qir.I64},
		rt.ColSpec{Name: "l_suppkey", Type: qir.I64},
		rt.ColSpec{Name: "l_quantity", Type: qir.I128},
		rt.ColSpec{Name: "l_extendedprice", Type: qir.I128},
		rt.ColSpec{Name: "l_discount", Type: qir.I128},
		rt.ColSpec{Name: "l_tax", Type: qir.I128},
		rt.ColSpec{Name: "l_returnflag", Type: qir.Str},
		rt.ColSpec{Name: "l_linestatus", Type: qir.Str},
		rt.ColSpec{Name: "l_shipdate", Type: qir.I32},
		rt.ColSpec{Name: "l_commitdate", Type: qir.I32},
		rt.ColSpec{Name: "l_receiptdate", Type: qir.I32},
		rt.ColSpec{Name: "l_shipmode", Type: qir.Str})
	for i := int64(0); i < nLine; i++ {
		cat.SetInt(lineitem.MustCol("l_orderkey"), i, rng.intn(nOrd))
		cat.SetInt(lineitem.MustCol("l_partkey"), i, rng.intn(nPart))
		cat.SetInt(lineitem.MustCol("l_suppkey"), i, rng.intn(nSupp))
		cat.SetI128(lineitem.MustCol("l_quantity"), i, rt.I128FromInt64(1+rng.intn(50)))
		cat.SetI128(lineitem.MustCol("l_extendedprice"), i, rt.I128FromInt64(100+rng.intn(1000000)))
		cat.SetI128(lineitem.MustCol("l_discount"), i, rt.I128FromInt64(rng.intn(11)))
		cat.SetI128(lineitem.MustCol("l_tax"), i, rt.I128FromInt64(rng.intn(9)))
		cat.SetStr(lineitem.MustCol("l_returnflag"), i, returnFlags[rng.intn(3)])
		cat.SetStr(lineitem.MustCol("l_linestatus"), i, lineStatus[rng.intn(2)])
		ship := 8000 + rng.intn(2500)
		cat.SetInt(lineitem.MustCol("l_shipdate"), i, ship)
		cat.SetInt(lineitem.MustCol("l_commitdate"), i, ship+rng.intn(30))
		cat.SetInt(lineitem.MustCol("l_receiptdate"), i, ship+rng.intn(60))
		cat.SetStr(lineitem.MustCol("l_shipmode"), i, shipModes[rng.intn(7)])
	}
	return nil
}

// Schemas for plan construction.
func lineitemSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "l_orderkey", Type: qir.I64}, {Name: "l_partkey", Type: qir.I64},
		{Name: "l_suppkey", Type: qir.I64}, {Name: "l_quantity", Type: qir.I128},
		{Name: "l_extendedprice", Type: qir.I128}, {Name: "l_discount", Type: qir.I128},
		{Name: "l_tax", Type: qir.I128}, {Name: "l_returnflag", Type: qir.Str},
		{Name: "l_linestatus", Type: qir.Str}, {Name: "l_shipdate", Type: qir.I32},
		{Name: "l_commitdate", Type: qir.I32}, {Name: "l_receiptdate", Type: qir.I32},
		{Name: "l_shipmode", Type: qir.Str},
	}
}

func ordersSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "o_orderkey", Type: qir.I64}, {Name: "o_custkey", Type: qir.I64},
		{Name: "o_orderstatus", Type: qir.Str}, {Name: "o_totalprice", Type: qir.I128},
		{Name: "o_orderdate", Type: qir.I32}, {Name: "o_orderpriority", Type: qir.Str},
	}
}

func customerSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "c_custkey", Type: qir.I64}, {Name: "c_name", Type: qir.Str},
		{Name: "c_nationkey", Type: qir.I32}, {Name: "c_mktsegment", Type: qir.Str},
		{Name: "c_acctbal", Type: qir.I128},
	}
}

func partSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "p_partkey", Type: qir.I64}, {Name: "p_name", Type: qir.Str},
		{Name: "p_brand", Type: qir.Str}, {Name: "p_type", Type: qir.Str},
		{Name: "p_size", Type: qir.I32},
	}
}

func supplierSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "s_suppkey", Type: qir.I64}, {Name: "s_nationkey", Type: qir.I32},
		{Name: "s_name", Type: qir.Str},
	}
}

func nationSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "n_nationkey", Type: qir.I32}, {Name: "n_name", Type: qir.Str},
		{Name: "n_regionkey", Type: qir.I32},
	}
}
