package tpch

import (
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/interp"
	"qcc/internal/codegen"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func newWorld(t *testing.T, sf float64) (*rt.DB, *rt.Catalog) {
	t.Helper()
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 256 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	if err := Load(cat, sf); err != nil {
		t.Fatal(err)
	}
	return db, cat
}

func TestAll22QueriesRun(t *testing.T) {
	db, cat := newWorld(t, 0.05)
	eng := interp.New()
	nonEmpty := 0
	for _, q := range Queries() {
		c, err := codegen.Compile(q.Name, q.Build(), cat)
		if err != nil {
			t.Fatalf("%s: compile: %v", q.Name, err)
		}
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatalf("%s: backend: %v", q.Name, err)
		}
		db.Out.Reset()
		if err := codegen.Run(db, cat, c, ex.Call); err != nil {
			t.Fatalf("%s: run: %v", q.Name, err)
		}
		if db.Out.NumRows() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 18 {
		t.Errorf("only %d/22 queries returned rows", nonEmpty)
	}
}

// TestInterpAndDirectAgreeOnSuite cross-checks the whole suite between two
// engines (the remaining engines are covered by the conformance corpus).
func TestInterpAndDirectAgreeOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite cross-check is slow")
	}
	run := func(eng backend.Engine, q Query) []string {
		db, cat := newWorld(t, 0.03)
		c, err := codegen.Compile(q.Name, q.Build(), cat)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		db.Out.Reset()
		if err := codegen.Run(db, cat, c, ex.Call); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		return db.Out.Canonical()
	}
	for _, q := range Queries() {
		a := run(interp.New(), q)
		b := run(direct.New(), q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: interp and direct disagree (%d vs %d rows)", q.Name, len(a), len(b))
		}
	}
}
