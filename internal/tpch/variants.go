package tpch

import (
	"qcc/internal/plan"
	"qcc/internal/qir"
)

// Parameterized query families for the plan-cache experiment. Each family
// fixes one plan shape and varies only literal constants (predicate
// thresholds, date windows, market segments) — the situation the
// constant-hoisted plan cache targets: under hoisting every variant of a
// family compiles to the same parameterized body, so a cache warmed by one
// variant serves all of them and only the bound constant pool changes
// between executions. Variant 0 is always the canonical paper query.

// ParamQuery is one parameterized family: Build(v) returns the family's
// plan shape instantiated with variant v's constants.
type ParamQuery struct {
	Name  string
	Build func(variant int) plan.Node
}

// ParamQueries returns the constant-variant families. The chosen parameters
// all sit in selection predicates, away from anything structural: variants
// differ in selectivity, never in plan shape, schema, or aggregate list.
func ParamQueries() []ParamQuery {
	segments := []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "FURNITURE", "HOUSEHOLD"}
	return []ParamQuery{
		{"q1", func(v int) plan.Node {
			return q1Param(10400 - int64(v)*15)
		}},
		{"q3", func(v int) plan.Node {
			return q3Param(segments[v%len(segments)], 9200-int64(v)*10)
		}},
		{"q6", func(v int) plan.Node {
			lo := 9000 + int64(v)*20
			return q6Param(lo, lo+365, 3+int64(v%3), 6+int64(v%3), 24-int64(v%6))
		}},
		{"q15", func(v int) plan.Node {
			lo := 9800 - int64(v)*12
			return q15Param(lo, lo+90)
		}},
	}
}

// q1Param is q1 with a parameterized shipdate cutoff.
func q1Param(shipCut int64) plan.Node {
	sel := &plan.Select{
		Input: scanL(),
		Pred:  cmp(plan.CmpLE, col(9, qir.I32), i32v(shipCut)),
	}
	g := &plan.GroupBy{
		Input: sel,
		Keys:  []plan.Expr{col(7, qir.Str), col(8, qir.Str)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: col(3, qir.I128)},
			{Fn: plan.AggSum, Arg: col(4, qir.I128)},
			{Fn: plan.AggSum, Arg: revenue(0)},
			{Fn: plan.AggAvg, Arg: col(3, qir.I128)},
			{Fn: plan.AggAvg, Arg: col(4, qir.I128)},
			{Fn: plan.AggCount},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{
		{E: col(0, qir.Str)}, {E: col(1, qir.Str)},
	}}
}

// q3Param is q3 with a parameterized market segment and order-date cutoff
// (the cutoff bounds both the order date and the ship date, as in the
// canonical query).
func q3Param(segment string, dateCut int64) plan.Node {
	cust := &plan.Select{Input: scanC(), Pred: cmp(plan.CmpEQ, col(3, qir.Str), strv(segment))}
	ords := &plan.Select{Input: scanO(), Pred: cmp(plan.CmpLT, col(4, qir.I32), i32v(dateCut))}
	jco := &plan.HashJoin{
		Build: cust, Probe: ords,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// schema: c(0..4) ++ o(5..10)
	line := &plan.Select{Input: scanL(), Pred: cmp(plan.CmpGT, col(9, qir.I32), i32v(dateCut))}
	j := &plan.HashJoin{
		Build: jco, Probe: line,
		BuildKeys: []plan.Expr{col(5, qir.I64)},
		ProbeKeys: []plan.Expr{col(0, qir.I64)},
	}
	// schema: c,o (0..10) ++ l (11..23)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(5, qir.I64), col(9, qir.I32)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(11)}},
	}
	s := &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(2, qir.I128), To: qir.I64}, Desc: true}}}
	return &plan.Limit{Input: s, N: 10}
}

// q6Param is q6 with a parameterized shipdate window [shipLo, shipHi),
// discount band [discLo, discHi], and quantity cutoff.
func q6Param(shipLo, shipHi, discLo, discHi, qty int64) plan.Node {
	pred := and(
		and(cmp(plan.CmpGE, col(9, qir.I32), i32v(shipLo)),
			cmp(plan.CmpLT, col(9, qir.I32), i32v(shipHi))),
		and(&plan.Between{E: col(5, qir.I128), Lo: decv(discLo), Hi: decv(discHi)},
			cmp(plan.CmpLT, col(3, qir.I128), decv(qty))))
	sel := &plan.Select{Input: scanL(), Pred: pred}
	return &plan.GroupBy{
		Input: sel,
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: arith(plan.OpMul, col(4, qir.I128), col(5, qir.I128))},
			{Fn: plan.AggCount},
		},
	}
}

// q15Param is q15 with a parameterized shipdate window [shipLo, shipHi).
func q15Param(shipLo, shipHi int64) plan.Node {
	sel := &plan.Select{Input: scanL(), Pred: and(
		cmp(plan.CmpGE, col(9, qir.I32), i32v(shipLo)),
		cmp(plan.CmpLT, col(9, qir.I32), i32v(shipHi)))}
	g := &plan.GroupBy{
		Input: sel,
		Keys:  []plan.Expr{col(2, qir.I64)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: revenue(0)}},
	}
	s := &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(1, qir.I128), To: qir.I64}, Desc: true}}}
	return &plan.Limit{Input: s, N: 1}
}
