package vt

import (
	"encoding/binary"
	"fmt"
)

// Label identifies a forward- or backward-referenced code position within one
// Assembler. Labels are created with NewLabel and given a position with Bind.
type Label int32

// RelocKind describes how a relocation site must be patched by a linker.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocCall32 patches a 32-bit absolute code offset (vx64 Call).
	RelocCall32 RelocKind = iota
	// RelocAbs64 patches a 64-bit absolute value (vx64 MovRI).
	RelocAbs64
	// RelocCall24 patches a 24-bit absolute code word offset (va64 Call).
	RelocCall24
	// RelocMovSeq64 patches the imm16 fields of a 4-instruction
	// MovZ/MovK sequence (va64 address materialization).
	RelocMovSeq64
)

// Reloc records a site in emitted code that a linker must patch with the
// final value of a symbol.
type Reloc struct {
	Kind   RelocKind
	Offset int32 // byte offset of the patch site within the code buffer
	Sym    int32 // symbol index, meaning is assigned by the consumer
}

// Patch writes the resolved symbol value into code at the relocation site.
func (r Reloc) Patch(code []byte, value int64) {
	switch r.Kind {
	case RelocCall32:
		binary.LittleEndian.PutUint32(code[r.Offset:], uint32(value))
	case RelocAbs64:
		binary.LittleEndian.PutUint64(code[r.Offset:], uint64(value))
	case RelocCall24:
		w := binary.LittleEndian.Uint32(code[r.Offset:])
		w = w&0xFF | uint32(value/4)<<8
		binary.LittleEndian.PutUint32(code[r.Offset:], w)
	case RelocMovSeq64:
		v := uint64(value)
		for i := 0; i < 4; i++ {
			off := int(r.Offset) + 4*i
			w := binary.LittleEndian.Uint32(code[off:])
			w = w&0x0000FFFF | uint32(v>>(16*i)&0xFFFF)<<16
			binary.LittleEndian.PutUint32(code[off:], w)
		}
	default:
		panic("vt: bad reloc kind")
	}
}

// Assembler encodes Instr values into target machine code. Branch targets
// are expressed via labels stored in Instr.Target; unresolved references are
// recorded as fixups and patched in Finish.
type Assembler interface {
	// Target returns the architecture descriptor being encoded for.
	Target() *Target
	// Emit appends one instruction. For branch operations Instr.Target
	// must hold a Label obtained from NewLabel.
	Emit(i Instr)
	// NewLabel allocates an unbound label.
	NewLabel() Label
	// Bind fixes a label to the current code position.
	Bind(l Label)
	// PCOffset returns the current code length in bytes.
	PCOffset() int
	// EmitCallSym emits a call to a not-yet-placed local function,
	// recording a relocation against sym.
	EmitCallSym(sym int32)
	// EmitMovSym emits code loading the final address of sym into rd,
	// recording a relocation.
	EmitMovSym(rd uint8, sym int32)
	// Finish resolves all label fixups and returns the code bytes and
	// relocations. The assembler must not be used afterwards.
	Finish() ([]byte, []Reloc, error)
}

// NewAssembler returns an encoder for the given architecture.
func NewAssembler(a Arch) Assembler {
	switch a {
	case VX64:
		return &x64Asm{t: vx64Target}
	case VA64:
		return &a64Asm{t: va64Target}
	}
	panic("vt: unknown arch")
}

// NewFastX64Assembler returns a vx64 encoder that always stores immediates
// in 8 bytes. This is the DirectEmit-style encoder described in the paper:
// it trades code compactness for a branch-free encoding path.
func NewFastX64Assembler() Assembler {
	return &x64Asm{t: vx64Target, fixedImm: true}
}

type fixup struct {
	label Label
	at    int32 // byte offset of the rel32 field
	end   int32 // byte offset the displacement is relative to (vx64) or instr start (va64)
	kind  uint8 // 0: vx64 rel32; 1: va64 rel24 word; 2: va64 rel18 word
}

const (
	fixRel32 uint8 = iota
	fixRel24
	fixRel18
)

// ---------------------------------------------------------------------------
// vx64: variable-length encoding.
//
// byte 0: opcode. Remaining bytes depend on the operation class:
//
//	none      Nop, Ret
//	rr        byte1 = hi<<4 | lo register nibbles
//	setcc     byte1 = rd<<4|ra, byte2 = cond<<4|rb
//	mulwide   byte1 = rd<<4|rc, byte2 = ra<<4|rb
//	ri        byte1 = regs, byte2 = size code 0..3 (1/2/4/8 bytes), imm LE
//	br        rel32
//	brcc      byte1 = ra<<4|rb, byte2 = cond, rel32
//	brnz      byte1 = ra<<4, rel32
//	call      abs32 (relocated)
//	callrt    uint16 id
//	trap      byte1 = code
//	trapnz    byte1 = ra<<4, byte2 = code
// ---------------------------------------------------------------------------

type x64Asm struct {
	t        *Target
	code     []byte
	labels   []int32
	fixups   []fixup
	relocs   []Reloc
	fixedImm bool
	err      error
}

func (a *x64Asm) Target() *Target { return a.t }
func (a *x64Asm) PCOffset() int   { return len(a.code) }

func (a *x64Asm) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

func (a *x64Asm) Bind(l Label) {
	if a.labels[l] != -1 {
		a.fail("label %d bound twice", l)
		return
	}
	a.labels[l] = int32(len(a.code))
}

func (a *x64Asm) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("vx64: "+format, args...)
	}
}

func (a *x64Asm) byte(b byte) { a.code = append(a.code, b) }
func (a *x64Asm) regs(hi, lo uint8) {
	if hi > 15 || lo > 15 {
		a.fail("register out of range: %d, %d", hi, lo)
	}
	a.byte(hi<<4 | lo&0xF)
}

func (a *x64Asm) imm(v int64) {
	if a.fixedImm {
		a.byte(3)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		a.code = append(a.code, b[:]...)
		return
	}
	switch {
	case v >= -128 && v < 128:
		a.byte(0)
		a.byte(byte(v))
	case v >= -32768 && v < 32768:
		a.byte(1)
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(v))
		a.code = append(a.code, b[:]...)
	case v >= -(1<<31) && v < 1<<31:
		a.byte(2)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		a.code = append(a.code, b[:]...)
	default:
		a.byte(3)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		a.code = append(a.code, b[:]...)
	}
}

// rel32 emits a 4-byte displacement field, recording a fixup if the label is
// not yet bound.
func (a *x64Asm) rel32(l Label) {
	at := int32(len(a.code))
	a.code = append(a.code, 0, 0, 0, 0)
	end := int32(len(a.code))
	if int(l) >= len(a.labels) {
		a.fail("branch to unknown label %d", l)
		return
	}
	a.fixups = append(a.fixups, fixup{label: l, at: at, end: end, kind: fixRel32})
}

func (a *x64Asm) Emit(i Instr) {
	op := i.Op
	a.byte(byte(op))
	switch op {
	case Nop, Ret:
		// no operands
	case MovRR:
		a.regs(i.RD, i.RA)
	case FMovRR:
		a.regs(i.RD, i.RA)
	case MovRF, CvtF2SI:
		a.regs(i.RD, i.RA)
	case MovFR, CvtSI2F:
		a.regs(i.RD, i.RA)
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem, Crc32:
		if i.RD != i.RA {
			a.fail("%s: two-address form requires RD==RA (got r%d, r%d)", op, i.RD, i.RA)
		}
		a.regs(i.RD, i.RB)
	case FAdd, FSub, FMul, FDiv:
		if i.RD != i.RA {
			a.fail("%s: two-address form requires FD==FA", op)
		}
		a.regs(i.RD, i.RB)
	case Neg, Not:
		if i.RD != i.RA {
			a.fail("%s: two-address form requires RD==RA", op)
		}
		a.regs(i.RD, 0)
	case SetCC:
		a.regs(i.RD, i.RA)
		a.byte(byte(i.Cond)<<4 | i.RB&0xF)
	case FCmp:
		a.regs(i.RD, i.RA)
		a.byte(byte(i.Cond)<<4 | i.RB&0xF)
	case MulWideU, MulWideS:
		a.regs(i.RD, i.RC)
		a.regs(i.RA, i.RB)
	case MovRI, FMovRI:
		a.regs(i.RD, 0)
		a.imm(i.Imm)
	case AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea:
		if a.t.TwoAddress && op != Lea && i.RD != i.RA {
			a.fail("%s: two-address form requires RD==RA", op)
		}
		a.regs(i.RD, i.RA)
		a.imm(i.Imm)
	case Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64, FLoad,
		LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64, FLoadU:
		a.regs(i.RD, i.RA)
		a.imm(i.Imm)
	case Store8, Store16, Store32, Store64,
		StoreU8, StoreU16, StoreU32, StoreU64:
		a.regs(i.RA, i.RB)
		a.imm(i.Imm)
	case FStore, FStoreU:
		a.regs(i.RA, i.RB)
		a.imm(i.Imm)
	case Br:
		a.rel32(Label(i.Target))
	case BrCC:
		a.regs(i.RA, i.RB)
		a.byte(byte(i.Cond))
		a.rel32(Label(i.Target))
	case BrNZ:
		a.regs(i.RA, 0)
		a.rel32(Label(i.Target))
	case Call:
		// Direct call with a known offset: encode absolute 32-bit.
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i.Imm))
		a.code = append(a.code, b[:]...)
	case CallInd:
		a.regs(i.RA, 0)
	case CallRT:
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(i.Imm))
		a.code = append(a.code, b[:]...)
	case Trap:
		a.byte(byte(i.Imm))
	case TrapNZ:
		a.regs(i.RA, 0)
		a.byte(byte(i.Imm))
	case MovZ, MovK:
		a.fail("%s not supported on vx64", op)
	default:
		a.fail("cannot encode %s", op)
	}
}

func (a *x64Asm) EmitCallSym(sym int32) {
	a.byte(byte(Call))
	a.relocs = append(a.relocs, Reloc{Kind: RelocCall32, Offset: int32(len(a.code)), Sym: sym})
	a.code = append(a.code, 0, 0, 0, 0)
}

func (a *x64Asm) EmitMovSym(rd uint8, sym int32) {
	a.byte(byte(MovRI))
	a.regs(rd, 0)
	a.byte(3) // always 8-byte immediate for relocated values
	a.relocs = append(a.relocs, Reloc{Kind: RelocAbs64, Offset: int32(len(a.code)), Sym: sym})
	a.code = append(a.code, 0, 0, 0, 0, 0, 0, 0, 0)
}

func (a *x64Asm) Finish() ([]byte, []Reloc, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	for _, f := range a.fixups {
		pos := a.labels[f.label]
		if pos < 0 {
			return nil, nil, fmt.Errorf("vx64: unbound label %d", f.label)
		}
		binary.LittleEndian.PutUint32(a.code[f.at:], uint32(pos-f.end))
	}
	return a.code, a.relocs, nil
}

// ---------------------------------------------------------------------------
// va64: fixed 4-byte encoding.
//
// Register-register word: [op:8][rd:6][ra:6][rb:6][x:6] where x carries the
// condition (SetCC, FCmp), the second destination (MulWide), or is unused.
// Register-immediate word:  [op:8][rd:6][ra:6][imm:12 signed]
// MovZ/MovK:                [op:8][rd:6][shift:2][imm:16]
// Br:                       [op:8][rel:24 signed words]
// BrNZ:                     [op:8][ra:6][rel:18 signed words]
// Call:                     [op:8][abs:24 words, relocated]
// CallRT:                   [op:8][x:8][id:16]
//
// Out-of-range immediates, displacements and BrCC are expanded into
// multi-instruction sequences using the reserved scratch register.
// ---------------------------------------------------------------------------

type a64Asm struct {
	t      *Target
	code   []byte
	labels []int32
	fixups []fixup
	relocs []Reloc
	err    error
}

func (a *a64Asm) Target() *Target { return a.t }
func (a *a64Asm) PCOffset() int   { return len(a.code) }

func (a *a64Asm) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

func (a *a64Asm) Bind(l Label) {
	if a.labels[l] != -1 {
		a.fail("label %d bound twice", l)
		return
	}
	a.labels[l] = int32(len(a.code))
}

func (a *a64Asm) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("va64: "+format, args...)
	}
}

func (a *a64Asm) word(w uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	a.code = append(a.code, b[:]...)
}

func r6(r uint8) uint32 {
	return uint32(r) & 0x3F
}

func (a *a64Asm) rrWord(op Op, rd, ra, rb, x uint8) {
	a.word(uint32(op) | r6(rd)<<8 | r6(ra)<<14 | r6(rb)<<20 | r6(x)<<26)
}

func (a *a64Asm) riWord(op Op, rd, ra uint8, imm int64) {
	a.word(uint32(op) | r6(rd)<<8 | r6(ra)<<14 | uint32(imm&0xFFF)<<20)
}

func fitsImm12(v int64) bool { return v >= -2048 && v < 2048 }

// movConst synthesizes an arbitrary 64-bit constant into rd via MovZ/MovK.
func (a *a64Asm) movConst(rd uint8, v int64) {
	u := uint64(v)
	emitted := false
	for sh := 0; sh < 4; sh++ {
		part := u >> (16 * sh) & 0xFFFF
		if part == 0 && !(sh == 3 && !emitted) {
			continue
		}
		op := MovK
		if !emitted {
			op = MovZ
			emitted = true
		}
		a.word(uint32(op) | r6(rd)<<8 | uint32(sh)<<14 | uint32(part)<<16)
	}
	if !emitted {
		a.word(uint32(MovZ) | r6(rd)<<8)
	}
}

func (a *a64Asm) Emit(i Instr) {
	op := i.Op
	sc := a.t.Scratch
	switch op {
	case Nop, Ret:
		a.word(uint32(op))
	case MovRR, FMovRR, MovRF, MovFR, CvtSI2F, CvtF2SI, Neg, Not:
		a.rrWord(op, i.RD, i.RA, 0, 0)
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem,
		Crc32, FAdd, FSub, FMul, FDiv:
		a.rrWord(op, i.RD, i.RA, i.RB, 0)
	case SetCC, FCmp:
		a.rrWord(op, i.RD, i.RA, i.RB, uint8(i.Cond))
	case MulWideU, MulWideS:
		a.rrWord(op, i.RD, i.RA, i.RB, i.RC)
	case MovZ, MovK:
		a.word(uint32(op) | r6(i.RD)<<8 | uint32(i.Cond&3)<<14 | uint32(uint16(i.Imm))<<16)
	case MovRI:
		a.movConst(i.RD, i.Imm)
	case FMovRI:
		a.movConst(sc, i.Imm)
		a.rrWord(MovFR, i.RD, sc, 0, 0)
	case AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea:
		if fitsImm12(i.Imm) {
			a.riWord(op, i.RD, i.RA, i.Imm)
			return
		}
		a.movConst(sc, i.Imm)
		rr := op.immToRR()
		a.rrWord(rr, i.RD, i.RA, sc, 0)
	case Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64, FLoad,
		LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64, FLoadU:
		if fitsImm12(i.Imm) {
			a.riWord(op, i.RD, i.RA, i.Imm)
			return
		}
		a.movConst(sc, i.Imm)
		a.rrWord(Add, sc, sc, i.RA, 0)
		a.riWord(op, i.RD, sc, 0)
	case Store8, Store16, Store32, Store64, FStore,
		StoreU8, StoreU16, StoreU32, StoreU64, FStoreU:
		if fitsImm12(i.Imm) {
			a.riWord(op, i.RB, i.RA, i.Imm)
			return
		}
		a.movConst(sc, i.Imm)
		a.rrWord(Add, sc, sc, i.RA, 0)
		a.riWord(op, i.RB, sc, 0)
	case Br:
		at := int32(len(a.code))
		a.word(uint32(op))
		a.fixups = append(a.fixups, fixup{label: Label(i.Target), at: at, end: at, kind: fixRel24})
	case BrNZ:
		at := int32(len(a.code))
		a.word(uint32(op) | r6(i.RA)<<8)
		a.fixups = append(a.fixups, fixup{label: Label(i.Target), at: at, end: at, kind: fixRel18})
	case BrCC:
		// Expand: SetCC scratch; BrNZ scratch.
		a.rrWord(SetCC, sc, i.RA, i.RB, uint8(i.Cond))
		at := int32(len(a.code))
		a.word(uint32(BrNZ) | r6(sc)<<8)
		a.fixups = append(a.fixups, fixup{label: Label(i.Target), at: at, end: at, kind: fixRel18})
	case Call:
		a.word(uint32(op) | uint32(i.Imm/4)<<8)
	case CallInd:
		a.rrWord(op, 0, i.RA, 0, 0)
	case CallRT:
		a.word(uint32(op) | uint32(uint16(i.Imm))<<16)
	case Trap:
		a.rrWord(op, uint8(i.Imm), 0, 0, 0)
	case TrapNZ:
		a.rrWord(op, uint8(i.Imm), i.RA, 0, 0)
	default:
		a.fail("cannot encode %s", op)
	}
}

// immToRR maps a register-immediate ALU op to its register-register form.
func (o Op) immToRR() Op {
	switch o {
	case AddI, Lea:
		return Add
	case SubI:
		return Sub
	case MulI:
		return Mul
	case AndI:
		return And
	case OrI:
		return Or
	case XorI:
		return Xor
	case ShlI:
		return Shl
	case ShrI:
		return Shr
	case SarI:
		return Sar
	case RotrI:
		return Rotr
	}
	panic(fmt.Sprintf("vt: no rr form of %s", o))
}

func (a *a64Asm) EmitCallSym(sym int32) {
	a.relocs = append(a.relocs, Reloc{Kind: RelocCall24, Offset: int32(len(a.code)), Sym: sym})
	a.word(uint32(Call))
}

func (a *a64Asm) EmitMovSym(rd uint8, sym int32) {
	a.relocs = append(a.relocs, Reloc{Kind: RelocMovSeq64, Offset: int32(len(a.code)), Sym: sym})
	for sh := 0; sh < 4; sh++ {
		op := MovK
		if sh == 0 {
			op = MovZ
		}
		a.word(uint32(op) | r6(rd)<<8 | uint32(sh)<<14)
	}
}

func (a *a64Asm) Finish() ([]byte, []Reloc, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	for _, f := range a.fixups {
		pos := a.labels[f.label]
		if pos < 0 {
			return nil, nil, fmt.Errorf("va64: unbound label %d", f.label)
		}
		relWords := (pos - f.at) / 4
		w := binary.LittleEndian.Uint32(a.code[f.at:])
		switch f.kind {
		case fixRel24:
			if relWords < -(1<<23) || relWords >= 1<<23 {
				return nil, nil, fmt.Errorf("va64: branch out of range (%d words)", relWords)
			}
			w = w&0xFF | uint32(relWords&0xFFFFFF)<<8
		case fixRel18:
			if relWords < -(1<<17) || relWords >= 1<<17 {
				return nil, nil, fmt.Errorf("va64: brnz out of range (%d words)", relWords)
			}
			w = w&0x3FFF | uint32(relWords&0x3FFFF)<<14
		default:
			return nil, nil, fmt.Errorf("va64: bad fixup kind")
		}
		binary.LittleEndian.PutUint32(a.code[f.at:], w)
	}
	return a.code, a.relocs, nil
}
