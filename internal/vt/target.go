package vt

// Arch identifies a virtual target architecture.
type Arch uint8

// Supported architectures.
const (
	VX64 Arch = iota // 16 GPRs, two-address ALU, variable-length encoding
	VA64             // 32 GPRs, three-address ALU, fixed 4-byte encoding
)

func (a Arch) String() string {
	switch a {
	case VX64:
		return "vx64"
	case VA64:
		return "va64"
	}
	return "arch(?)"
}

// Target describes the register file and calling convention of an
// architecture. Back-ends consult the Target when allocating registers and
// lowering calls; the vm uses it to set up frames.
type Target struct {
	Arch Arch
	Name string

	// NumGPR is the number of integer registers, including SP.
	NumGPR int
	// NumFPR is the number of floating-point registers.
	NumFPR int
	// SP is the stack-pointer register number. It is not allocatable.
	SP uint8
	// Scratch is a register reserved for encoder-internal expansion
	// sequences (va64 constant synthesis and branch expansion). It is not
	// allocatable on targets that need it; 0xFF means none is reserved.
	Scratch uint8

	// IntArgs lists the integer argument registers in order.
	IntArgs []uint8
	// FloatArgs lists the floating-point argument registers in order.
	FloatArgs []uint8
	// IntRet lists the integer return-value registers (up to two: 128-bit
	// values and by-value strings return in a pair).
	IntRet []uint8
	// CalleeSaved lists the integer registers a callee must preserve.
	CalleeSaved []uint8
	// CallerSaved lists the integer registers clobbered by calls,
	// excluding SP and Scratch.
	CallerSaved []uint8

	// TwoAddress reports whether register-register ALU operations require
	// RD == RA (the encoder rejects other forms).
	TwoAddress bool
	// FixedLen is the instruction size in bytes for fixed-length
	// encodings, or 0 for variable-length encodings.
	FixedLen int
}

func span(lo, hi uint8) []uint8 {
	r := make([]uint8, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		r = append(r, i)
	}
	return r
}

var vx64Target = &Target{
	Arch:        VX64,
	Name:        "vx64",
	NumGPR:      16,
	NumFPR:      16,
	SP:          15,
	Scratch:     0xFF,
	IntArgs:     []uint8{0, 1, 2, 3, 4, 5},
	FloatArgs:   []uint8{0, 1, 2, 3, 4, 5, 6, 7},
	IntRet:      []uint8{0, 1},
	CalleeSaved: span(10, 14),
	CallerSaved: span(0, 9),
	TwoAddress:  true,
	FixedLen:    0,
}

var va64Target = &Target{
	Arch:        VA64,
	Name:        "va64",
	NumGPR:      32,
	NumFPR:      16,
	SP:          31,
	Scratch:     30,
	IntArgs:     []uint8{0, 1, 2, 3, 4, 5, 6, 7},
	FloatArgs:   []uint8{0, 1, 2, 3, 4, 5, 6, 7},
	IntRet:      []uint8{0, 1},
	CalleeSaved: span(19, 29),
	CallerSaved: span(0, 18),
	TwoAddress:  false,
	FixedLen:    4,
}

// ForArch returns the Target descriptor for an architecture.
func ForArch(a Arch) *Target {
	switch a {
	case VX64:
		return vx64Target
	case VA64:
		return va64Target
	}
	panic("vt: unknown arch")
}

// IsCalleeSaved reports whether integer register r must be preserved by
// callees on this target.
func (t *Target) IsCalleeSaved(r uint8) bool {
	for _, c := range t.CalleeSaved {
		if c == r {
			return true
		}
	}
	return false
}

// AllocatableGPRs returns the integer registers available to a register
// allocator, excluding SP and the encoder scratch register.
func (t *Target) AllocatableGPRs() []uint8 {
	rs := make([]uint8, 0, t.NumGPR)
	for i := 0; i < t.NumGPR; i++ {
		r := uint8(i)
		if r == t.SP || r == t.Scratch {
			continue
		}
		rs = append(rs, r)
	}
	return rs
}
