package vt

import (
	"encoding/binary"
	"strings"
	"testing"
)

// TestDecodeX64Truncated feeds the vx64 decoder instruction prefixes cut off
// mid-operand; every one must come back as a truncation error, not a panic.
func TestDecodeX64Truncated(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"movri-no-imm", []byte{byte(MovRI), 0x10}},
		{"movri-short-imm", []byte{byte(MovRI), 0x10, 3, 1, 2}},
		{"add-no-regs", []byte{byte(Add)}},
		{"setcc-short", []byte{byte(SetCC), 0x01}},
		{"store-no-imm", []byte{byte(Store64), 0x12}},
		{"br-short-rel", []byte{byte(Br), 1, 2}},
		{"brcc-short-rel", []byte{byte(BrCC), 0x12, 0, 1}},
		{"call-short", []byte{byte(Call), 1, 2, 3}},
		{"callrt-short", []byte{byte(CallRT), 7}},
		{"trapnz-short", []byte{byte(TrapNZ), 0x10}},
	}
	for _, c := range cases {
		_, err := Decode(VX64, c.code)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%s: want truncated error, got %v", c.name, err)
		}
	}
}

func TestDecodeX64BadOpcode(t *testing.T) {
	_, err := Decode(VX64, []byte{0xFF})
	if err == nil || !strings.Contains(err.Error(), "bad opcode") {
		t.Errorf("want bad opcode error, got %v", err)
	}
}

// a64word assembles one va64 instruction word from its raw bit fields.
func a64word(op Op, rd, ra, rb, x uint8) []byte {
	w := uint32(op) | uint32(rd)<<8 | uint32(ra)<<14 | uint32(rb)<<20 | uint32(x)<<26
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	return b[:]
}

// TestDecodeA64BadRegisterFields checks that 6-bit register fields naming a
// register beyond the machine's 32 GPRs / 16 FPRs are rejected with an error
// (they previously aliased silently).
func TestDecodeA64BadRegisterFields(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"mov-rd", a64word(MovRR, 40, 1, 0, 0)},
		{"add-rb", a64word(Add, 1, 2, 33, 0)},
		{"fadd-rd-fpr", a64word(FAdd, 16, 0, 1, 0)},
		{"fmov-ra-fpr", a64word(FMovRR, 0, 20, 0, 0)},
		{"fcmp-ra-fpr", a64word(FCmp, 3, 17, 2, 0)},
		{"fload-rd-fpr", a64word(FLoad, 20, 1, 0, 0)},
		{"fstore-value-fpr", a64word(FStore, 16, 1, 0, 0)},
		{"cvt-si2f-rd-fpr", a64word(CvtSI2F, 16, 1, 0, 0)},
		{"store-value-field", a64word(Store64, 35, 1, 0, 0)},
		{"load-ra", a64word(Load64, 1, 33, 0, 0)},
		{"movz-rd", a64word(MovZ, 45, 0, 0, 0)},
		{"mulwide-rc", a64word(MulWideU, 1, 2, 3, 34)},
		{"brnz-ra", a64word(BrNZ, 33, 0, 0, 0)},
		{"callind-ra", a64word(CallInd, 0, 32, 0, 0)},
	}
	for _, c := range cases {
		_, err := Decode(VA64, c.code)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: want out-of-range register error, got %v", c.name, err)
		}
	}
}

// TestDecodeA64ValidBoundaries checks that the highest real register in each
// class still decodes (the range check must not be off by one).
func TestDecodeA64ValidBoundaries(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"add-r31", a64word(Add, 31, 31, 31, 0)},
		{"fadd-f15", a64word(FAdd, 15, 15, 15, 0)},
		{"fload-f15", a64word(FLoad, 15, 31, 0, 0)},
		{"mulwide-r31", a64word(MulWideU, 1, 2, 3, 31)},
	}
	for _, c := range cases {
		if _, err := Decode(VA64, c.code); err != nil {
			t.Errorf("%s: unexpected decode error: %v", c.name, err)
		}
	}
}

func TestDecodeA64Unaligned(t *testing.T) {
	_, err := Decode(VA64, []byte{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "word-aligned") {
		t.Errorf("want alignment error, got %v", err)
	}
}
