// Package vt defines the virtual target architectures that all compilation
// back-ends in this repository generate code for.
//
// Two targets are provided, mirroring the x86-64/AArch64 pair studied in the
// paper:
//
//   - VX64: 16 integer registers, two-address ALU operations, and a
//     variable-length byte encoding (immediates are stored in the smallest of
//     1/2/4/8 bytes). Encoding is compact but branchy, like x86-64.
//   - VA64: 32 integer registers, three-address ALU operations, and a fixed
//     4-byte instruction encoding. Large immediates, far displacements, and
//     compare-and-branch operations are expanded by the encoder into
//     multi-instruction sequences (MovZ/MovK, SetCC+BrNZ), like AArch64.
//
// Machine code produced by the encoders is executed by package vm, which
// decodes the byte stream back into Instr values. Compile-time work done by
// the back-ends (instruction selection, register allocation, encoding,
// relocation) is therefore real work of the same shape a native JIT performs,
// and run-time code quality differences (spills, redundant moves, missed
// combines) show up as real executed-instruction counts.
package vt

import "fmt"

// Op is a virtual machine operation. Semantics are shared between targets;
// only the encoding differs.
type Op uint8

// Operation set. Field usage conventions (see Instr):
//
//	RD   destination register
//	RA   first source register (for two-address targets RD==RA is required
//	     on register-register ALU ops; the encoder enforces this)
//	RB   second source register
//	RC   second destination (MulWide) or scratch
//	Cond condition code for SetCC/BrCC/FCmp
//	Imm  immediate, displacement, runtime-function id, or trap code
const (
	Nop Op = iota

	// Data movement.
	MovRR // RD = RA
	MovRI // RD = Imm (may carry a relocation)
	MovZ  // RD = Imm16 << (Cond*16)           (va64 constant synthesis)
	MovK  // RD = RD with Imm16 at (Cond*16)    (va64 constant synthesis)

	// Memory. Address is RA+Imm. Loads zero-extend unless the S suffix.
	Load8
	Load8S
	Load16
	Load16S
	Load32
	Load32S
	Load64
	Store8  // mem[RA+Imm] = RB
	Store16 // mem[RA+Imm] = RB
	Store32 // mem[RA+Imm] = RB
	Store64 // mem[RA+Imm] = RB
	Lea     // RD = RA + Imm

	// Integer ALU, register-register: RD = RA op RB.
	Add
	Sub
	Mul
	And
	Or
	Xor
	Shl
	Shr
	Sar
	Rotr
	SDiv // traps on division by zero
	SRem
	UDiv
	URem

	// Integer ALU, register-immediate: RD = RA op Imm.
	AddI
	SubI
	MulI
	AndI
	OrI
	XorI
	ShlI
	ShrI
	SarI
	RotrI

	// Unary: RD = op RA.
	Neg
	Not

	// MulWide: RD = low 64 bits, RC = high 64 bits of RA*RB.
	MulWideU
	MulWideS

	// SetCC: RD = (RA Cond RB) ? 1 : 0.
	SetCC

	// Control flow. Branch targets are byte offsets relative to the start
	// of the code buffer; the encoder patches them via labels.
	Br      // unconditional, Target
	BrCC    // if RA Cond RB, Target
	BrNZ    // if RA != 0, Target
	Call    // call local function, Imm = code byte offset (patched by linker)
	CallInd // call through register: target code offset in RA
	CallRT  // call runtime function, Imm = runtime function id
	Ret

	// Traps. Imm is a TrapCode.
	Trap   // unconditional
	TrapNZ // trap if RA != 0

	// Special arithmetic.
	Crc32 // RD = crc32c(RA, RB) over the 8 bytes of RB

	// Floating point (separate register file F0..F15).
	FMovRR // FD = FA (register numbers in RD/RA)
	FMovRI // FD = float64 from Imm bit pattern
	FLoad  // FD = mem[RA+Imm] as float64
	FStore // mem[RA+Imm] = FB
	FAdd   // FD = FA + FB
	FSub
	FMul
	FDiv
	FCmp    // RD (integer) = FA Cond FB
	CvtSI2F // FD = float64(int64 RA)
	CvtF2SI // RD = int64(float64 FA)
	MovRF   // RD = bit pattern of FA
	MovFR   // FD = bit pattern of RA

	// Unchecked memory operations. Operands and semantics match the
	// checked counterparts, but the null/bounds check was discharged at
	// compile time by the static analysis (internal/sa): the producing
	// back-end asserts the address is valid whenever the instruction is
	// reached. The vm executes them without the per-access software
	// check; under its eliminated-check instrumentation mode it instead
	// re-checks and reports a distinguished verification failure, which
	// is how the safety differential falsifies wrong analysis facts.
	// The block is contiguous (LoadU8..FStoreU) and mirrors the checked
	// op order so the two families convert by arithmetic (CheckedMem).
	LoadU8
	LoadU8S
	LoadU16
	LoadU16S
	LoadU32
	LoadU32S
	LoadU64
	StoreU8  // mem[RA+Imm] = RB
	StoreU16 // mem[RA+Imm] = RB
	StoreU32 // mem[RA+Imm] = RB
	StoreU64 // mem[RA+Imm] = RB
	FLoadU   // FD = mem[RA+Imm] as float64
	FStoreU  // mem[RA+Imm] = FB

	NumOps // sentinel
)

// Cond is a comparison condition for SetCC, BrCC and FCmp.
type Cond uint8

// Condition codes.
const (
	CondEQ Cond = iota
	CondNE
	CondSLT
	CondSLE
	CondSGT
	CondSGE
	CondULT
	CondULE
	CondUGT
	CondUGE
	NumConds
)

// Negate returns the inverse condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondSLT:
		return CondSGE
	case CondSLE:
		return CondSGT
	case CondSGT:
		return CondSLE
	case CondSGE:
		return CondSLT
	case CondULT:
		return CondUGE
	case CondULE:
		return CondUGT
	case CondUGT:
		return CondULE
	case CondUGE:
		return CondULT
	}
	panic(fmt.Sprintf("vt: bad cond %d", c))
}

// Swap returns the condition with operands exchanged (a c b == b c.Swap() a).
func (c Cond) Swap() Cond {
	switch c {
	case CondEQ, CondNE:
		return c
	case CondSLT:
		return CondSGT
	case CondSLE:
		return CondSGE
	case CondSGT:
		return CondSLT
	case CondSGE:
		return CondSLE
	case CondULT:
		return CondUGT
	case CondULE:
		return CondUGE
	case CondUGT:
		return CondULT
	case CondUGE:
		return CondULE
	}
	panic(fmt.Sprintf("vt: bad cond %d", c))
}

var condNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// TrapCode identifies the reason for a generated-code trap.
type TrapCode uint8

// Trap codes.
const (
	TrapUnreachable TrapCode = iota
	TrapOverflow
	TrapDivZero
	TrapNull
	TrapOOB
	// TrapElimCheck reports an unchecked memory access whose eliminated
	// bounds/null check would have fired. It can only be raised by the vm's
	// strict verification mode (or a host fault on the fast path) and always
	// indicates a static-analysis or lowering bug, never program behavior.
	TrapElimCheck
)

var trapNames = [...]string{"unreachable", "overflow", "divzero", "null", "oob", "elimcheck"}

func (t TrapCode) String() string {
	if int(t) < len(trapNames) {
		return trapNames[t]
	}
	return fmt.Sprintf("trap(%d)", uint8(t))
}

// Instr is one decoded virtual machine instruction. Encoders consume it and
// the vm decoder reproduces it.
type Instr struct {
	Op     Op
	Cond   Cond
	RD     uint8
	RA     uint8
	RB     uint8
	RC     uint8
	Imm    int64
	Target int32 // label id before encoding, byte offset after decoding
}

var opNames = [NumOps]string{
	Nop: "nop", MovRR: "mov", MovRI: "movi", MovZ: "movz", MovK: "movk",
	Load8: "ld8", Load8S: "ld8s", Load16: "ld16", Load16S: "ld16s",
	Load32: "ld32", Load32S: "ld32s", Load64: "ld64",
	Store8: "st8", Store16: "st16", Store32: "st32", Store64: "st64",
	Lea: "lea",
	Add: "add", Sub: "sub", Mul: "mul", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar", Rotr: "rotr",
	SDiv: "sdiv", SRem: "srem", UDiv: "udiv", URem: "urem",
	AddI: "addi", SubI: "subi", MulI: "muli", AndI: "andi", OrI: "ori",
	XorI: "xori", ShlI: "shli", ShrI: "shri", SarI: "sari", RotrI: "rotri",
	Neg: "neg", Not: "not",
	MulWideU: "mulwu", MulWideS: "mulws",
	SetCC: "set", Br: "br", BrCC: "brcc", BrNZ: "brnz",
	Call: "call", CallInd: "calli", CallRT: "callrt", Ret: "ret",
	Trap: "trap", TrapNZ: "trapnz", Crc32: "crc32",
	FMovRR: "fmov", FMovRI: "fmovi", FLoad: "fld", FStore: "fst",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FCmp: "fcmp",
	CvtSI2F: "si2f", CvtF2SI: "f2si", MovRF: "movrf", MovFR: "movfr",
	LoadU8: "ldu8", LoadU8S: "ldu8s", LoadU16: "ldu16", LoadU16S: "ldu16s",
	LoadU32: "ldu32", LoadU32S: "ldu32s", LoadU64: "ldu64",
	StoreU8: "stu8", StoreU16: "stu16", StoreU32: "stu32", StoreU64: "stu64",
	FLoadU: "fldu", FStoreU: "fstu",
}

func (o Op) String() string {
	if o < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the operation transfers control via Target.
func (o Op) IsBranch() bool {
	switch o {
	case Br, BrCC, BrNZ:
		return true
	}
	return false
}

// IsTerminator reports whether the operation ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case Br, Ret, Trap:
		return true
	}
	return false
}

// HasSideEffects reports whether the operation may be observed beyond its
// register results (memory writes, calls, traps, control flow).
func (o Op) HasSideEffects() bool {
	switch o {
	case Store8, Store16, Store32, Store64, FStore,
		StoreU8, StoreU16, StoreU32, StoreU64, FStoreU,
		Call, CallInd, CallRT, Ret, Trap, TrapNZ,
		Br, BrCC, BrNZ, SDiv, SRem, UDiv, URem:
		return true
	}
	return false
}

// UncheckedMem reports whether the operation is an unchecked memory access.
func (o Op) UncheckedMem() bool { return o >= LoadU8 && o <= FStoreU }

// CheckedMem maps an unchecked memory operation to its checked counterpart
// and leaves every other operation unchanged. Code that classifies
// operations structurally (encoders, decoders, fusion) switches on
// o.CheckedMem() so the unchecked family inherits the checked family's
// operand layout.
func (o Op) CheckedMem() Op {
	switch {
	case o >= LoadU8 && o <= StoreU64:
		return Load8 + (o - LoadU8)
	case o == FLoadU:
		return FLoad
	case o == FStoreU:
		return FStore
	}
	return o
}

// UncheckedMemOf maps a checked memory operation to its unchecked variant;
// ok is false for operations without one.
func UncheckedMemOf(o Op) (Op, bool) {
	switch {
	case o >= Load8 && o <= Store64:
		return LoadU8 + (o - Load8), true
	case o == FLoad:
		return FLoadU, true
	case o == FStore:
		return FStoreU, true
	}
	return o, false
}

// IsCall reports whether the operation transfers control to a callee (and,
// except for CallRT, pushes a return address).
func (o Op) IsCall() bool {
	switch o {
	case Call, CallInd, CallRT:
		return true
	}
	return false
}

// MemRef describes a memory-accessing operation: the access width in bytes
// and whether it writes memory. ok is false for non-memory operations. The
// address of every memory operation is RA+Imm.
func (o Op) MemRef() (size uint8, store bool, ok bool) {
	switch c := o.CheckedMem(); c {
	case Load8, Load8S, Store8:
		return 1, c == Store8, true
	case Load16, Load16S, Store16:
		return 2, c == Store16, true
	case Load32, Load32S, Store32:
		return 4, c == Store32, true
	case Load64, Store64, FLoad, FStore:
		return 8, c == Store64 || c == FStore, true
	}
	return 0, false, false
}

// CanTrap reports whether executing the operation may raise a trap (memory
// bounds, division by zero, explicit traps, or call-target resolution).
// Trap-free operations are eligible for superinstruction fusion in the vm.
// Unchecked memory operations carry a compile-time proof of validity and do
// not trap on the primary path (the instrumentation mode re-checks them,
// but a failure there is an analysis bug, not program behavior).
func (o Op) CanTrap() bool {
	if o.UncheckedMem() {
		return false
	}
	if _, _, mem := o.MemRef(); mem {
		return true
	}
	switch o {
	case SDiv, SRem, UDiv, URem, Trap, TrapNZ, CallInd, CallRT:
		return true
	}
	return false
}
