package vt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// encodeOne encodes a single non-branch instruction and decodes it back.
func encodeOne(t *testing.T, arch Arch, in Instr) []Instr {
	t.Helper()
	a := NewAssembler(arch)
	a.Emit(in)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	p, err := Decode(arch, code)
	if err != nil {
		t.Fatalf("decode %v: %v", in, err)
	}
	return p.Instrs
}

func TestRoundTripSimpleX64(t *testing.T) {
	cases := []Instr{
		{Op: Nop},
		{Op: Ret},
		{Op: MovRR, RD: 3, RA: 7},
		{Op: MovRI, RD: 5, Imm: -1},
		{Op: MovRI, RD: 5, Imm: 1 << 40},
		{Op: Add, RD: 2, RA: 2, RB: 9},
		{Op: AddI, RD: 4, RA: 4, Imm: 127},
		{Op: AddI, RD: 4, RA: 4, Imm: 128},
		{Op: AddI, RD: 4, RA: 4, Imm: -40000},
		{Op: Lea, RD: 4, RA: 7, Imm: 1 << 33},
		{Op: Load32, RD: 1, RA: 15, Imm: -8},
		{Op: Store64, RA: 15, RB: 3, Imm: 4096},
		{Op: SetCC, Cond: CondULE, RD: 1, RA: 2, RB: 3},
		{Op: MulWideU, RD: 1, RC: 2, RA: 3, RB: 4},
		{Op: Crc32, RD: 6, RA: 6, RB: 7},
		{Op: Trap, Imm: int64(TrapOverflow)},
		{Op: TrapNZ, RA: 9, Imm: int64(TrapDivZero)},
		{Op: CallRT, Imm: 513},
		{Op: CallInd, RA: 11},
		{Op: FAdd, RD: 3, RA: 3, RB: 4},
		{Op: FCmp, Cond: CondSLT, RD: 2, RA: 1, RB: 5},
		{Op: CvtSI2F, RD: 3, RA: 8},
		{Op: MovRF, RD: 4, RA: 9},
	}
	for _, c := range cases {
		got := encodeOne(t, VX64, c)
		if len(got) != 1 {
			t.Fatalf("%v: decoded %d instrs", c, len(got))
		}
		if got[0] != c {
			t.Errorf("roundtrip mismatch:\n in %+v\nout %+v", c, got[0])
		}
	}
}

func TestRoundTripSimpleA64(t *testing.T) {
	cases := []Instr{
		{Op: Nop},
		{Op: Ret},
		{Op: MovRR, RD: 25, RA: 31},
		{Op: Add, RD: 20, RA: 21, RB: 22},
		{Op: AddI, RD: 4, RA: 9, Imm: 2047},
		{Op: AddI, RD: 4, RA: 9, Imm: -2048},
		{Op: Load32, RD: 1, RA: 31, Imm: -8},
		{Op: Store64, RA: 31, RB: 3, Imm: 2000},
		{Op: SetCC, Cond: CondULE, RD: 1, RA: 2, RB: 3},
		{Op: MulWideU, RD: 1, RC: 2, RA: 3, RB: 4},
		{Op: Crc32, RD: 6, RA: 7, RB: 8},
		{Op: Trap, Imm: int64(TrapOverflow)},
		{Op: TrapNZ, RA: 9, Imm: int64(TrapDivZero)},
		{Op: CallRT, Imm: 513},
		{Op: CallInd, RA: 11},
		{Op: FAdd, RD: 3, RA: 1, RB: 4},
		{Op: FCmp, Cond: CondSLT, RD: 2, RA: 1, RB: 5},
	}
	for _, c := range cases {
		got := encodeOne(t, VA64, c)
		if len(got) != 1 {
			t.Fatalf("%v: decoded %d instrs", c, len(got))
		}
		if got[0] != c {
			t.Errorf("roundtrip mismatch:\n in %+v\nout %+v", c, got[0])
		}
	}
}

// TestMovRIExpansionA64 checks that constant synthesis reproduces arbitrary
// 64-bit values when the MovZ/MovK sequence is interpreted.
func TestMovRIExpansionA64(t *testing.T) {
	interp := func(instrs []Instr) uint64 {
		var r uint64
		for _, in := range instrs {
			sh := 16 * uint(in.Cond)
			switch in.Op {
			case MovZ:
				r = uint64(uint16(in.Imm)) << sh
			case MovK:
				r = r&^(uint64(0xFFFF)<<sh) | uint64(uint16(in.Imm))<<sh
			default:
				t.Fatalf("unexpected op %v", in.Op)
			}
		}
		return r
	}
	f := func(v int64) bool {
		a := NewAssembler(VA64)
		a.Emit(Instr{Op: MovRI, RD: 1, Imm: v})
		code, _, err := a.Finish()
		if err != nil {
			return false
		}
		p, err := Decode(VA64, code)
		if err != nil {
			return false
		}
		return interp(p.Instrs) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, -1, 1, 0xFFFF, 0x10000, -65536, 1 << 48, -1 << 48} {
		if !f(v) {
			t.Errorf("movri %d not reproduced", v)
		}
	}
}

func TestImmediateSizesX64(t *testing.T) {
	f := func(v int64) bool {
		a := NewAssembler(VX64)
		a.Emit(Instr{Op: MovRI, RD: 2, Imm: v})
		code, _, err := a.Finish()
		if err != nil {
			return false
		}
		p, err := Decode(VX64, code)
		if err != nil || len(p.Instrs) != 1 {
			return false
		}
		return p.Instrs[0].Imm == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFastEncoderLargerButEquivalent(t *testing.T) {
	emit := func(a Assembler) {
		a.Emit(Instr{Op: MovRI, RD: 1, Imm: 3})
		a.Emit(Instr{Op: AddI, RD: 1, RA: 1, Imm: 10})
		a.Emit(Instr{Op: Ret})
	}
	std := NewAssembler(VX64)
	emit(std)
	stdCode, _, err := std.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fast := NewFastX64Assembler()
	emit(fast)
	fastCode, _, err := fast.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(fastCode) <= len(stdCode) {
		t.Errorf("fast encoder should produce larger code: %d vs %d", len(fastCode), len(stdCode))
	}
	ps, err := Decode(VX64, stdCode)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Decode(VX64, fastCode)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Instrs) != len(pf.Instrs) {
		t.Fatalf("instr count differs: %d vs %d", len(ps.Instrs), len(pf.Instrs))
	}
	for i := range ps.Instrs {
		if ps.Instrs[i] != pf.Instrs[i] {
			t.Errorf("instr %d differs: %+v vs %+v", i, ps.Instrs[i], pf.Instrs[i])
		}
	}
}

func TestBranchFixups(t *testing.T) {
	for _, arch := range []Arch{VX64, VA64} {
		a := NewAssembler(arch)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Emit(Instr{Op: AddI, RD: 1, RA: 1, Imm: 1})
		a.Emit(Instr{Op: BrCC, Cond: CondSLT, RA: 1, RB: 2, Target: int32(top)})
		a.Emit(Instr{Op: Br, Target: int32(end)})
		a.Emit(Instr{Op: Trap, Imm: int64(TrapUnreachable)})
		a.Bind(end)
		a.Emit(Instr{Op: Ret})
		code, _, err := a.Finish()
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		p, err := Decode(arch, code)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		// Find branches; their targets must land on instruction starts.
		for k, in := range p.Instrs {
			if in.Op.IsBranch() {
				if in.Target < 0 || int(in.Target) >= len(p.Index) || p.Index[in.Target] < 0 {
					t.Errorf("%v: instr %d branch to unaligned %d", arch, k, in.Target)
				}
			}
		}
		// The conditional branch must target offset 0 (label top).
		found := false
		for _, in := range p.Instrs {
			if (in.Op == BrCC || in.Op == BrNZ) && in.Target == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: no backward branch to offset 0 found", arch)
		}
	}
}

func TestUnboundLabelError(t *testing.T) {
	for _, arch := range []Arch{VX64, VA64} {
		a := NewAssembler(arch)
		l := a.NewLabel()
		a.Emit(Instr{Op: Br, Target: int32(l)})
		if _, _, err := a.Finish(); err == nil {
			t.Errorf("%v: expected unbound label error", arch)
		}
	}
}

func TestTwoAddressViolationX64(t *testing.T) {
	a := NewAssembler(VX64)
	a.Emit(Instr{Op: Add, RD: 1, RA: 2, RB: 3})
	if _, _, err := a.Finish(); err == nil {
		t.Error("expected two-address violation error")
	}
}

func TestRelocPatch(t *testing.T) {
	// vx64 call relocation.
	a := NewAssembler(VX64)
	a.EmitCallSym(7)
	a.Emit(Instr{Op: Ret})
	code, relocs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(relocs) != 1 || relocs[0].Sym != 7 {
		t.Fatalf("relocs = %+v", relocs)
	}
	relocs[0].Patch(code, 1234)
	p, err := Decode(VX64, code)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != Call || p.Instrs[0].Imm != 1234 {
		t.Errorf("patched call = %+v", p.Instrs[0])
	}

	// va64 mov-sequence relocation.
	b := NewAssembler(VA64)
	b.EmitMovSym(3, 9)
	b.Emit(Instr{Op: Ret})
	code2, relocs2, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	relocs2[0].Patch(code2, 0x1122334455667788)
	p2, err := Decode(VA64, code2)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for _, in := range p2.Instrs {
		sh := 16 * uint(in.Cond)
		switch in.Op {
		case MovZ:
			v = uint64(uint16(in.Imm)) << sh
		case MovK:
			v = v&^(uint64(0xFFFF)<<sh) | uint64(uint16(in.Imm))<<sh
		}
	}
	if v != 0x1122334455667788 {
		t.Errorf("patched movseq = %#x", v)
	}
}

func TestCondNegateSwap(t *testing.T) {
	vals := []int64{-3, 0, 5}
	for c := Cond(0); c < NumConds; c++ {
		for _, a := range vals {
			for _, b := range vals {
				got := evalTest(c, a, b)
				if evalTest(c.Negate(), a, b) == got {
					t.Errorf("negate(%v) wrong for %d,%d", c, a, b)
				}
				if evalTest(c.Swap(), b, a) != got {
					t.Errorf("swap(%v) wrong for %d,%d", c, a, b)
				}
			}
		}
	}
}

func evalTest(c Cond, a, b int64) bool {
	ua, ub := uint64(a), uint64(b)
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondSLT:
		return a < b
	case CondSLE:
		return a <= b
	case CondSGT:
		return a > b
	case CondSGE:
		return a >= b
	case CondULT:
		return ua < ub
	case CondULE:
		return ua <= ub
	case CondUGT:
		return ua > ub
	case CondUGE:
		return ua >= ub
	}
	return false
}

// TestRandomProgramRoundTrip encodes random straight-line programs and
// verifies the decoder reproduces them exactly (vx64) or semantically
// (va64 expansions decode to more instructions).
func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	aluOps := []Op{Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr}
	for trial := 0; trial < 200; trial++ {
		var want []Instr
		a := NewAssembler(VX64)
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			var in Instr
			switch rng.Intn(4) {
			case 0:
				r := uint8(rng.Intn(16))
				in = Instr{Op: aluOps[rng.Intn(len(aluOps))], RD: r, RA: r, RB: uint8(rng.Intn(16))}
			case 1:
				in = Instr{Op: MovRI, RD: uint8(rng.Intn(16)), Imm: rng.Int63() - rng.Int63()}
			case 2:
				in = Instr{Op: Load64, RD: uint8(rng.Intn(16)), RA: uint8(rng.Intn(16)), Imm: int64(int32(rng.Uint32()))}
			case 3:
				in = Instr{Op: SetCC, Cond: Cond(rng.Intn(int(NumConds))), RD: uint8(rng.Intn(16)), RA: uint8(rng.Intn(16)), RB: uint8(rng.Intn(16))}
			}
			want = append(want, in)
			a.Emit(in)
		}
		code, _, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decode(VX64, code)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Instrs) != len(want) {
			t.Fatalf("trial %d: got %d instrs want %d", trial, len(p.Instrs), len(want))
		}
		for i := range want {
			if p.Instrs[i] != want[i] {
				t.Fatalf("trial %d instr %d: got %+v want %+v", trial, i, p.Instrs[i], want[i])
			}
		}
	}
}

func TestTargetDescriptors(t *testing.T) {
	for _, arch := range []Arch{VX64, VA64} {
		tg := ForArch(arch)
		if tg.Arch != arch {
			t.Errorf("%v: arch mismatch", arch)
		}
		gprs := tg.AllocatableGPRs()
		for _, r := range gprs {
			if r == tg.SP || r == tg.Scratch {
				t.Errorf("%v: allocatable contains reserved r%d", arch, r)
			}
		}
		if len(gprs) >= tg.NumGPR {
			t.Errorf("%v: SP not excluded", arch)
		}
		for _, r := range tg.CalleeSaved {
			if !tg.IsCalleeSaved(r) {
				t.Errorf("%v: IsCalleeSaved(r%d) = false", arch, r)
			}
		}
		for _, r := range tg.CallerSaved {
			if tg.IsCalleeSaved(r) {
				t.Errorf("%v: caller-saved r%d reported callee-saved", arch, r)
			}
		}
	}
}

func TestDisasmCoverage(t *testing.T) {
	a := NewAssembler(VX64)
	l := a.NewLabel()
	a.Bind(l)
	a.Emit(Instr{Op: MovRI, RD: 1, Imm: 42})
	a.Emit(Instr{Op: BrCC, Cond: CondEQ, RA: 1, RB: 2, Target: int32(l)})
	a.Emit(Instr{Op: Ret})
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(VX64, code)
	if err != nil {
		t.Fatal(err)
	}
	out := DisasmAll(p)
	if out == "" {
		t.Error("empty disassembly")
	}
	for _, in := range p.Instrs {
		if s := Disasm(in); s == "" || s[0] == '?' {
			t.Errorf("bad disasm for %+v: %q", in, s)
		}
	}
}
