package vt

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Program is decoded machine code ready for execution or disassembly.
type Program struct {
	Arch   Arch
	Code   []byte
	Instrs []Instr
	// Index maps a byte offset in Code to the index in Instrs of the
	// instruction starting there, or -1.
	Index []int32
	// Offsets holds the starting byte offset of each instruction.
	Offsets []int32
}

// Decode parses machine code for the given architecture. Branch and call
// targets in the returned instructions are absolute byte offsets into code.
func Decode(arch Arch, code []byte) (*Program, error) {
	p := &Program{Arch: arch, Code: code}
	p.Index = make([]int32, len(code)+1)
	for i := range p.Index {
		p.Index[i] = -1
	}
	var err error
	switch arch {
	case VX64:
		err = p.decodeX64()
	case VA64:
		err = p.decodeA64()
	default:
		return nil, fmt.Errorf("vt: unknown arch %d", arch)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Program) add(off int, i Instr) {
	p.Index[off] = int32(len(p.Instrs))
	p.Offsets = append(p.Offsets, int32(off))
	p.Instrs = append(p.Instrs, i)
}

func (p *Program) decodeX64() error {
	code := p.Code
	pc := 0
	for pc < len(code) {
		start := pc
		op := Op(code[pc])
		pc++
		i := Instr{Op: op}
		need := func(n int) bool { return pc+n <= len(code) }
		regs := func() (uint8, uint8) {
			b := code[pc]
			pc++
			return b >> 4, b & 0xF
		}
		imm := func() (int64, bool) {
			if !need(1) {
				return 0, false
			}
			sz := code[pc]
			pc++
			switch sz {
			case 0:
				if !need(1) {
					return 0, false
				}
				v := int64(int8(code[pc]))
				pc++
				return v, true
			case 1:
				if !need(2) {
					return 0, false
				}
				v := int64(int16(binary.LittleEndian.Uint16(code[pc:])))
				pc += 2
				return v, true
			case 2:
				if !need(4) {
					return 0, false
				}
				v := int64(int32(binary.LittleEndian.Uint32(code[pc:])))
				pc += 4
				return v, true
			case 3:
				if !need(8) {
					return 0, false
				}
				v := int64(binary.LittleEndian.Uint64(code[pc:]))
				pc += 8
				return v, true
			}
			return 0, false
		}
		rel32 := func() (int32, bool) {
			if !need(4) {
				return 0, false
			}
			v := int32(binary.LittleEndian.Uint32(code[pc:]))
			pc += 4
			return int32(pc) + v, true
		}
		bad := func() error { return fmt.Errorf("vx64: truncated %s at %d", op, start) }

		switch op {
		case Nop, Ret:
			// nothing
		case MovRR, FMovRR, MovRF, MovFR, CvtSI2F, CvtF2SI:
			if !need(1) {
				return bad()
			}
			i.RD, i.RA = regs()
		case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem,
			Crc32, FAdd, FSub, FMul, FDiv:
			if !need(1) {
				return bad()
			}
			i.RD, i.RB = regs()
			i.RA = i.RD
		case Neg, Not:
			if !need(1) {
				return bad()
			}
			i.RD, _ = regs()
			i.RA = i.RD
		case SetCC, FCmp:
			if !need(2) {
				return bad()
			}
			i.RD, i.RA = regs()
			c, rb := regs()
			i.Cond, i.RB = Cond(c), rb
		case MulWideU, MulWideS:
			if !need(2) {
				return bad()
			}
			i.RD, i.RC = regs()
			i.RA, i.RB = regs()
		case MovRI, FMovRI:
			if !need(1) {
				return bad()
			}
			i.RD, _ = regs()
			v, ok := imm()
			if !ok {
				return bad()
			}
			i.Imm = v
		case AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea,
			Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64, FLoad,
			LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64, FLoadU:
			if !need(1) {
				return bad()
			}
			i.RD, i.RA = regs()
			v, ok := imm()
			if !ok {
				return bad()
			}
			i.Imm = v
		case Store8, Store16, Store32, Store64, FStore,
			StoreU8, StoreU16, StoreU32, StoreU64, FStoreU:
			if !need(1) {
				return bad()
			}
			i.RA, i.RB = regs()
			v, ok := imm()
			if !ok {
				return bad()
			}
			i.Imm = v
		case Br:
			t, ok := rel32()
			if !ok {
				return bad()
			}
			i.Target = t
		case BrCC:
			if !need(2) {
				return bad()
			}
			i.RA, i.RB = regs()
			i.Cond = Cond(code[pc])
			pc++
			t, ok := rel32()
			if !ok {
				return bad()
			}
			i.Target = t
		case BrNZ:
			if !need(1) {
				return bad()
			}
			i.RA, _ = regs()
			t, ok := rel32()
			if !ok {
				return bad()
			}
			i.Target = t
		case Call:
			if !need(4) {
				return bad()
			}
			i.Imm = int64(binary.LittleEndian.Uint32(code[pc:]))
			pc += 4
		case CallInd:
			if !need(1) {
				return bad()
			}
			i.RA, _ = regs()
		case CallRT:
			if !need(2) {
				return bad()
			}
			i.Imm = int64(binary.LittleEndian.Uint16(code[pc:]))
			pc += 2
		case Trap:
			if !need(1) {
				return bad()
			}
			i.Imm = int64(code[pc])
			pc++
		case TrapNZ:
			if !need(2) {
				return bad()
			}
			i.RA, _ = regs()
			i.Imm = int64(code[pc])
			pc++
		default:
			return fmt.Errorf("vx64: bad opcode %d at %d", op, start)
		}
		p.add(start, i)
	}
	return nil
}

func (p *Program) decodeA64() error {
	code := p.Code
	if len(code)%4 != 0 {
		return fmt.Errorf("va64: code length %d not word-aligned", len(code))
	}
	tgt := ForArch(VA64)
	for pc := 0; pc < len(code); pc += 4 {
		w := binary.LittleEndian.Uint32(code[pc:])
		op := Op(w & 0xFF)
		rd := uint8(w >> 8 & 0x3F)
		ra := uint8(w >> 14 & 0x3F)
		rb := uint8(w >> 20 & 0x3F)
		x := uint8(w >> 26 & 0x3F)

		// Register fields are 6 bits wide but the machine has only 32
		// integer and 16 float registers; reject encodings that name a
		// register that does not exist rather than aliasing it later.
		var regErr error
		ck := func(n uint8, float bool, field string) {
			if regErr != nil {
				return
			}
			lim, cls := uint8(tgt.NumGPR), "r"
			if float {
				lim, cls = uint8(tgt.NumFPR), "f"
			}
			if n >= lim {
				regErr = fmt.Errorf("va64: %s: register field %s=%s%d out of range at %d",
					op, field, cls, n, pc)
			}
		}
		switch op {
		case MovRR, Neg, Not,
			AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea,
			Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64,
			LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64:
			ck(rd, false, "rd")
			ck(ra, false, "ra")
		case FMovRR:
			ck(rd, true, "rd")
			ck(ra, true, "ra")
		case MovRF, CvtF2SI:
			ck(rd, false, "rd")
			ck(ra, true, "ra")
		case MovFR, CvtSI2F, FLoad, FLoadU:
			ck(rd, true, "rd")
			ck(ra, false, "ra")
		case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem,
			Crc32, SetCC:
			ck(rd, false, "rd")
			ck(ra, false, "ra")
			ck(rb, false, "rb")
		case FAdd, FSub, FMul, FDiv:
			ck(rd, true, "rd")
			ck(ra, true, "ra")
			ck(rb, true, "rb")
		case FCmp:
			ck(rd, false, "rd")
			ck(ra, true, "ra")
			ck(rb, true, "rb")
		case MulWideU, MulWideS:
			ck(rd, false, "rd")
			ck(ra, false, "ra")
			ck(rb, false, "rb")
			ck(x, false, "rc")
		case MovZ, MovK:
			ck(rd, false, "rd")
		case Store8, Store16, Store32, Store64,
			StoreU8, StoreU16, StoreU32, StoreU64:
			ck(rd, false, "rb") // value field, encoded in the rd slot
			ck(ra, false, "ra")
		case FStore, FStoreU:
			ck(rd, true, "rb")
			ck(ra, false, "ra")
		case BrNZ:
			ck(rd, false, "ra") // tested register, encoded in the rd slot
		case CallInd, TrapNZ:
			ck(ra, false, "ra")
		}
		if regErr != nil {
			return regErr
		}

		i := Instr{Op: op}
		switch op {
		case Nop, Ret:
			// nothing
		case MovRR, FMovRR, MovRF, MovFR, CvtSI2F, CvtF2SI, Neg, Not:
			i.RD, i.RA = rd, ra
		case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem,
			Crc32, FAdd, FSub, FMul, FDiv:
			i.RD, i.RA, i.RB = rd, ra, rb
		case SetCC, FCmp:
			i.RD, i.RA, i.RB, i.Cond = rd, ra, rb, Cond(x)
		case MulWideU, MulWideS:
			i.RD, i.RA, i.RB, i.RC = rd, ra, rb, x
		case MovZ, MovK:
			i.RD = rd
			i.Cond = Cond(w >> 14 & 3)
			i.Imm = int64(w >> 16 & 0xFFFF)
		case AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea,
			Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64, FLoad,
			LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64, FLoadU:
			i.RD, i.RA = rd, ra
			i.Imm = int64(int32(w) >> 20)
		case Store8, Store16, Store32, Store64, FStore,
			StoreU8, StoreU16, StoreU32, StoreU64, FStoreU:
			i.RB, i.RA = rd, ra
			i.Imm = int64(int32(w) >> 20)
		case Br:
			rel := int32(w) >> 8
			i.Target = int32(pc) + rel*4
		case BrNZ:
			i.RA = rd
			rel := int32(w) >> 14
			i.Target = int32(pc) + rel*4
		case Call:
			i.Imm = int64(w>>8) * 4
		case CallInd:
			i.RA = ra
		case CallRT:
			i.Imm = int64(w >> 16 & 0xFFFF)
		case Trap:
			i.Imm = int64(rd)
		case TrapNZ:
			i.Imm, i.RA = int64(rd), ra
		default:
			return fmt.Errorf("va64: bad opcode %d at %d", op, pc)
		}
		p.add(pc, i)
	}
	return nil
}

// Disasm renders one instruction as assembly-like text.
func Disasm(i Instr) string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	f := func(n uint8) string { return fmt.Sprintf("f%d", n) }
	switch i.Op {
	case Nop, Ret:
		return i.Op.String()
	case MovRR:
		return fmt.Sprintf("mov %s, %s", r(i.RD), r(i.RA))
	case MovRI:
		return fmt.Sprintf("movi %s, %d", r(i.RD), i.Imm)
	case MovZ, MovK:
		return fmt.Sprintf("%s %s, %d, lsl %d", i.Op, r(i.RD), i.Imm, uint8(i.Cond)*16)
	case FMovRR:
		return fmt.Sprintf("fmov %s, %s", f(i.RD), f(i.RA))
	case FMovRI:
		return fmt.Sprintf("fmovi %s, %#x", f(i.RD), uint64(i.Imm))
	case MovRF:
		return fmt.Sprintf("movrf %s, %s", r(i.RD), f(i.RA))
	case MovFR:
		return fmt.Sprintf("movfr %s, %s", f(i.RD), r(i.RA))
	case CvtSI2F:
		return fmt.Sprintf("si2f %s, %s", f(i.RD), r(i.RA))
	case CvtF2SI:
		return fmt.Sprintf("f2si %s, %s", r(i.RD), f(i.RA))
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Rotr, SDiv, SRem, UDiv, URem, Crc32:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.RD), r(i.RA), r(i.RB))
	case FAdd, FSub, FMul, FDiv:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, f(i.RD), f(i.RA), f(i.RB))
	case Neg, Not:
		return fmt.Sprintf("%s %s", i.Op, r(i.RD))
	case AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, SarI, RotrI, Lea:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.RD), r(i.RA), i.Imm)
	case Load8, Load8S, Load16, Load16S, Load32, Load32S, Load64,
		LoadU8, LoadU8S, LoadU16, LoadU16S, LoadU32, LoadU32S, LoadU64:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, r(i.RD), r(i.RA), i.Imm)
	case FLoad, FLoadU:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, f(i.RD), r(i.RA), i.Imm)
	case Store8, Store16, Store32, Store64,
		StoreU8, StoreU16, StoreU32, StoreU64:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, r(i.RA), i.Imm, r(i.RB))
	case FStore, FStoreU:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, r(i.RA), i.Imm, f(i.RB))
	case SetCC:
		return fmt.Sprintf("set.%s %s, %s, %s", i.Cond, r(i.RD), r(i.RA), r(i.RB))
	case FCmp:
		return fmt.Sprintf("fcmp.%s %s, %s, %s", i.Cond, r(i.RD), f(i.RA), f(i.RB))
	case MulWideU, MulWideS:
		return fmt.Sprintf("%s %s:%s, %s, %s", i.Op, r(i.RC), r(i.RD), r(i.RA), r(i.RB))
	case Br:
		return fmt.Sprintf("br %d", i.Target)
	case BrCC:
		return fmt.Sprintf("br.%s %s, %s, %d", i.Cond, r(i.RA), r(i.RB), i.Target)
	case BrNZ:
		return fmt.Sprintf("brnz %s, %d", r(i.RA), i.Target)
	case Call:
		return fmt.Sprintf("call %d", i.Imm)
	case CallInd:
		return fmt.Sprintf("calli %s", r(i.RA))
	case CallRT:
		return fmt.Sprintf("callrt %d", i.Imm)
	case Trap:
		return fmt.Sprintf("trap %s", TrapCode(i.Imm))
	case TrapNZ:
		return fmt.Sprintf("trapnz %s, %s", r(i.RA), TrapCode(i.Imm))
	}
	return fmt.Sprintf("?%d", i.Op)
}

// DisasmAll renders a whole program, one instruction per line with offsets.
func DisasmAll(p *Program) string {
	var sb strings.Builder
	for k, i := range p.Instrs {
		fmt.Fprintf(&sb, "%6d: %s\n", p.Offsets[k], Disasm(i))
	}
	return sb.String()
}
