package rt

import (
	"fmt"
	"math"

	"qcc/internal/qir"
)

// Column describes one column of a stored table. Data is columnar: Base is
// the machine-memory address of a dense array of Rows elements, each
// Type.Size() bytes wide (Str columns store 16-byte string structs).
type Column struct {
	Name string
	Type qir.Type
	Base uint64
}

// Table is a loaded base relation.
type Table struct {
	Name string
	Cols []Column
	Rows int64
}

// Col returns the column with the given name.
func (t *Table) Col(name string) (*Column, error) {
	for i := range t.Cols {
		if t.Cols[i].Name == name {
			return &t.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("rt: table %s has no column %s", t.Name, name)
}

// MustCol is Col but panics; for use by generators with static schemas.
func (t *Table) MustCol(name string) *Column {
	c, err := t.Col(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Catalog is the set of loaded tables.
type Catalog struct {
	db     *DB
	Tables map[string]*Table
}

// NewCatalog creates an empty catalog backed by db.
func NewCatalog(db *DB) *Catalog {
	return &Catalog{db: db, Tables: make(map[string]*Table)}
}

// Table returns a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.Tables[name]
	if !ok {
		return nil, fmt.Errorf("rt: unknown table %s", name)
	}
	return t, nil
}

// ColSpec declares a column when creating a table.
type ColSpec struct {
	Name string
	Type qir.Type
}

// CreateTable allocates columnar storage for rows rows and registers the
// table in the catalog.
func (c *Catalog) CreateTable(name string, rows int64, cols ...ColSpec) *Table {
	t := &Table{Name: name, Rows: rows}
	for _, cs := range cols {
		base := c.db.M.Alloc(uint64(rows) * uint64(cs.Type.Size()))
		t.Cols = append(t.Cols, Column{Name: cs.Name, Type: cs.Type, Base: base})
	}
	c.Tables[name] = t
	return t
}

// SetInt stores an integer value (I8..I64 widths) into column col, row row.
func (c *Catalog) SetInt(col *Column, row int64, v int64) {
	mem := c.db.M.Mem
	switch col.Type {
	case qir.I8, qir.I1:
		mem[col.Base+uint64(row)] = byte(v)
	case qir.I16:
		a := col.Base + uint64(row)*2
		mem[a] = byte(v)
		mem[a+1] = byte(v >> 8)
	case qir.I32:
		put32(mem[col.Base+uint64(row)*4:], uint32(v))
	case qir.I64:
		put64(mem[col.Base+uint64(row)*8:], uint64(v))
	default:
		panic("rt: SetInt on non-integer column " + col.Name)
	}
}

// SetI128 stores a 128-bit decimal value.
func (c *Catalog) SetI128(col *Column, row int64, v I128) {
	if col.Type != qir.I128 {
		panic("rt: SetI128 on column " + col.Name)
	}
	a := col.Base + uint64(row)*16
	put64(c.db.M.Mem[a:], v.Lo)
	put64(c.db.M.Mem[a+8:], v.Hi)
}

// SetF64 stores a float value.
func (c *Catalog) SetF64(col *Column, row int64, v float64) {
	if col.Type != qir.F64 {
		panic("rt: SetF64 on column " + col.Name)
	}
	put64(c.db.M.Mem[col.Base+uint64(row)*8:], toBits(v))
}

// SetStr stores a string value (building the 16-byte struct, interning long
// bodies in machine memory).
func (c *Catalog) SetStr(col *Column, row int64, s string) {
	if col.Type != qir.Str {
		panic("rt: SetStr on column " + col.Name)
	}
	lo, hi := c.db.InternString(s)
	a := col.Base + uint64(row)*16
	put64(c.db.M.Mem[a:], lo)
	put64(c.db.M.Mem[a+8:], hi)
}

// GetInt reads back an integer value (for tests and verification).
func (c *Catalog) GetInt(col *Column, row int64) int64 {
	mem := c.db.M.Mem
	switch col.Type {
	case qir.I8, qir.I1:
		return int64(int8(mem[col.Base+uint64(row)]))
	case qir.I16:
		a := col.Base + uint64(row)*2
		return int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8))
	case qir.I32:
		return int64(int32(le32(mem[col.Base+uint64(row)*4:])))
	case qir.I64:
		return int64(le64(mem[col.Base+uint64(row)*8:]))
	}
	panic("rt: GetInt on non-integer column")
}

// GetStr reads back a string value.
func (c *Catalog) GetStr(col *Column, row int64) (string, error) {
	a := col.Base + uint64(row)*16
	lo := le64(c.db.M.Mem[a:])
	hi := le64(c.db.M.Mem[a+8:])
	return c.db.LoadString(lo, hi)
}

// GetI128 reads back a decimal value.
func (c *Catalog) GetI128(col *Column, row int64) I128 {
	a := col.Base + uint64(row)*16
	return I128{Lo: le64(c.db.M.Mem[a:]), Hi: le64(c.db.M.Mem[a+8:])}
}

// GetF64 reads back a float value.
func (c *Catalog) GetF64(col *Column, row int64) float64 {
	return fbits(le64(c.db.M.Mem[col.Base+uint64(row)*8:]))
}

func toBits(f float64) uint64 { return math.Float64bits(f) }
