package rt

import (
	"fmt"

	"qcc/internal/qir"
)

// Runtime constant pool: a fixed area of machine memory holding the values
// of literals the constant-hoisting pass moved out of compiled query bodies
// (qir.OpConstPool). The compiled code embeds only the slot address — a
// stable property of the DB, allocated in NewDB — and reads the value at
// execution time, so modules differing solely in literal values share
// compiled units in the content-addressed code cache. BindConstPool writes
// the current module's values before each execution.

// ConstPoolSlots is the pool capacity in slots. The hoisting pass falls back
// to inline literals when a module needs more, so this is a performance
// ceiling, not a correctness limit.
const ConstPoolSlots = 256

// constPoolSlotBytes is the slot width: 16 bytes holds every QIR value type
// (narrow integers sign-extended into the lo word, F64 bits in the lo word,
// I128 and Str as lo/hi pairs).
const constPoolSlotBytes = 16

// ConstPoolAddr returns the machine address of pool slot i. Back-ends call
// it at compile time to bake slot addresses into OpConstPool lowerings.
func (db *DB) ConstPoolAddr(slot int) uint64 {
	if slot < 0 || slot >= ConstPoolSlots {
		panic(fmt.Sprintf("rt: const-pool slot %d out of range [0,%d)", slot, ConstPoolSlots))
	}
	return db.poolBase + uint64(slot)*constPoolSlotBytes
}

// BindConstPool writes a module's hoisted literal values into the pool slots.
// String slots are interned into machine memory first (content-addressed per
// DB, so repeated binds of the same value are stable). Callers bind before
// every execution of a pooled module; binding is cheap (a few stores per
// slot) compared to the compilation it displaces.
func (db *DB) BindConstPool(pool []qir.PoolConst) error {
	if len(pool) > ConstPoolSlots {
		return fmt.Errorf("rt: module needs %d const-pool slots, capacity is %d", len(pool), ConstPoolSlots)
	}
	for i := range pool {
		pc := &pool[i]
		lo, hi := pc.Lo, pc.Hi
		if pc.Type == qir.Str {
			lo, hi = db.InternString(pc.Str)
		}
		addr := db.ConstPoolAddr(i)
		put64(db.M.Mem[addr:addr+8], lo)
		put64(db.M.Mem[addr+8:addr+16], hi)
	}
	return nil
}
