package rt

import (
	"fmt"
	"hash/crc32"
	"math/bits"

	"qcc/internal/obs"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Batch (vectorized) operator kernels. A batch-eligible pipeline compiles
// to a tiny main function that calls batch_exec once per morsel instead of
// looping tuple-at-a-time through generated code; the kernel runs the
// pipeline's filters, key/argument expressions, and aggregation or
// join-build sink over the whole morsel with selection vectors, amortizing
// VM dispatch over thousands of rows (the hybrid compiled+vectorized mode
// of Kashuba & Mühleisen).
//
// The kernel is driven by a BatchSpec the code generator serializes into a
// string constant (so it participates in code caching like any other baked
// constant) and hands to batch_prepare during pipeline setup. Semantics
// replicate the tuple-at-a-time code exactly — same CRC32C/long-mul-fold
// hash, same widened slot layout, same overflow traps in the same per-row
// order — so batch and tuple execution are byte-equivalent, including which
// trap fires first on poisoned data.

var (
	ctrBatchCalls = obs.NewCounter("rt_batch_kernel_calls")
	ctrBatchRows  = obs.NewCounter("rt_batch_rows")
)

// BatchType is the evaluation type of a batch expression. Small integers
// evaluate sign-extended at 64 bits, exactly like the widened tuple slots.
type BatchType uint8

// Batch value types.
const (
	BTInt BatchType = iota
	BTI128
	BTF64
	BTStr
)

// BatchExprKind discriminates batch expression nodes.
type BatchExprKind uint8

// Batch expression kinds.
const (
	BEConst BatchExprKind = iota
	BECol
	BEArith
	BECmp
	BEAnd
	BEBetween
)

// Batch arithmetic operators (overflow-trapping, SQL semantics).
const (
	BArithAdd uint8 = iota
	BArithSub
	BArithMul
)

// Batch comparison predicates.
const (
	BCmpEQ uint8 = iota
	BCmpNE
	BCmpLT
	BCmpLE
	BCmpGT
	BCmpGE
)

// BatchExpr is one node of a batch-evaluable expression tree.
type BatchExpr struct {
	Kind BatchExprKind
	// Ty is the value type (BEConst/BECol/BEArith) or the operand type
	// (BECmp/BEBetween).
	Ty BatchType
	// Op is the arithmetic or comparison operator.
	Op uint8
	// Base/Elem describe a column: base address and element width.
	Base, Elem uint64
	// Constant payloads.
	I int64
	D I128
	F float64
	S []byte
	// Children: L/R for arith, cmp, and; L=value, R=lo, H=hi for between.
	L, R, H *BatchExpr
}

// Aggregate function codes (same numbering as plan.AggFn).
const (
	BAggSum uint8 = iota
	BAggCount
	BAggMin
	BAggMax
	BAggAvg
)

// Batch sink kinds.
const (
	BatchSinkAgg uint8 = iota + 1
	BatchSinkBuild
)

// BatchKey is one group/join key: its widened payload slot and expression.
type BatchKey struct {
	Off int64
	Ty  BatchType
	E   *BatchExpr
}

// BatchAgg is one aggregate: function, running-slot type, payload offsets
// (COff is the Avg count slot) and argument expression (nil for Count).
type BatchAgg struct {
	Fn   uint8
	Ty   BatchType
	Off  int64
	COff int64
	Arg  *BatchExpr
}

// BatchCol is one join-build payload column, copied into the entry verbatim
// (the payload slot is pre-zeroed, so narrow columns match the tuple-mode
// typed store byte-for-byte).
type BatchCol struct {
	Off  int64
	Base uint64
	Elem uint64
}

// BatchSpec is the complete kernel program for one batch pipeline.
type BatchSpec struct {
	Sink    uint8
	Width   uint64
	Filters []*BatchExpr
	Keys    []BatchKey
	Aggs    []BatchAgg
	Payload []BatchCol
}

// --------------------------------------------------------------------------
// Descriptor serialization. The generator bakes the encoded spec into the
// module as a string constant; batch_prepare decodes it at setup time.
// --------------------------------------------------------------------------

const batchMagic uint64 = 0x3142435148435442 // "BTCHQCB1"

func bputU(b []byte, v uint64) []byte {
	var t [8]byte
	put64(t[:], v)
	return append(b, t[:]...)
}

func encExpr(b []byte, e *BatchExpr) []byte {
	b = bputU(b, uint64(e.Kind))
	switch e.Kind {
	case BEConst:
		b = bputU(b, uint64(e.Ty))
		switch e.Ty {
		case BTInt:
			b = bputU(b, uint64(e.I))
		case BTI128:
			b = bputU(b, e.D.Lo)
			b = bputU(b, e.D.Hi)
		case BTF64:
			b = bputU(b, toBits(e.F))
		case BTStr:
			b = bputU(b, uint64(len(e.S)))
			b = append(b, e.S...)
		}
	case BECol:
		b = bputU(b, uint64(e.Ty))
		b = bputU(b, e.Base)
		b = bputU(b, e.Elem)
	case BEArith, BECmp:
		b = bputU(b, uint64(e.Ty))
		b = bputU(b, uint64(e.Op))
		b = encExpr(b, e.L)
		b = encExpr(b, e.R)
	case BEAnd:
		b = encExpr(b, e.L)
		b = encExpr(b, e.R)
	case BEBetween:
		b = bputU(b, uint64(e.Ty))
		b = encExpr(b, e.L)
		b = encExpr(b, e.R)
		b = encExpr(b, e.H)
	}
	return b
}

// Encode serializes the spec for embedding as a module string constant.
func (s *BatchSpec) Encode() []byte {
	b := bputU(nil, batchMagic)
	b = bputU(b, uint64(s.Sink))
	b = bputU(b, s.Width)
	b = bputU(b, uint64(len(s.Filters)))
	for _, f := range s.Filters {
		b = encExpr(b, f)
	}
	b = bputU(b, uint64(len(s.Keys)))
	for _, k := range s.Keys {
		b = bputU(b, uint64(k.Off))
		b = bputU(b, uint64(k.Ty))
		b = encExpr(b, k.E)
	}
	b = bputU(b, uint64(len(s.Aggs)))
	for _, a := range s.Aggs {
		b = bputU(b, uint64(a.Fn))
		b = bputU(b, uint64(a.Ty))
		b = bputU(b, uint64(a.Off))
		b = bputU(b, uint64(a.COff))
		if a.Arg != nil {
			b = bputU(b, 1)
			b = encExpr(b, a.Arg)
		} else {
			b = bputU(b, 0)
		}
	}
	b = bputU(b, uint64(len(s.Payload)))
	for _, p := range s.Payload {
		b = bputU(b, uint64(p.Off))
		b = bputU(b, p.Base)
		b = bputU(b, p.Elem)
	}
	return b
}

type bdec struct {
	b   []byte
	pos int
	err error
}

func (d *bdec) u() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.b) {
		d.err = fmt.Errorf("rt: batch descriptor truncated at %d", d.pos)
		return 0
	}
	v := le64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *bdec) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(d.pos)+n > uint64(len(d.b)) {
		d.err = fmt.Errorf("rt: batch descriptor truncated at %d", d.pos)
		return nil
	}
	out := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out
}

func (d *bdec) expr(depth int) *BatchExpr {
	if d.err != nil {
		return nil
	}
	if depth > 64 {
		d.err = fmt.Errorf("rt: batch descriptor expression too deep")
		return nil
	}
	e := &BatchExpr{Kind: BatchExprKind(d.u())}
	switch e.Kind {
	case BEConst:
		e.Ty = BatchType(d.u())
		switch e.Ty {
		case BTInt:
			e.I = int64(d.u())
		case BTI128:
			e.D.Lo = d.u()
			e.D.Hi = d.u()
		case BTF64:
			e.F = fbits(d.u())
		case BTStr:
			n := d.u()
			e.S = append([]byte(nil), d.bytes(n)...)
		default:
			d.err = fmt.Errorf("rt: batch descriptor: bad const type %d", e.Ty)
		}
	case BECol:
		e.Ty = BatchType(d.u())
		e.Base = d.u()
		e.Elem = d.u()
	case BEArith, BECmp:
		e.Ty = BatchType(d.u())
		e.Op = uint8(d.u())
		e.L = d.expr(depth + 1)
		e.R = d.expr(depth + 1)
	case BEAnd:
		e.L = d.expr(depth + 1)
		e.R = d.expr(depth + 1)
	case BEBetween:
		e.Ty = BatchType(d.u())
		e.L = d.expr(depth + 1)
		e.R = d.expr(depth + 1)
		e.H = d.expr(depth + 1)
	default:
		d.err = fmt.Errorf("rt: batch descriptor: bad expr kind %d", e.Kind)
	}
	return e
}

// DecodeBatchSpec parses an encoded kernel program.
func DecodeBatchSpec(b []byte) (*BatchSpec, error) {
	d := &bdec{b: b}
	if d.u() != batchMagic {
		return nil, fmt.Errorf("rt: batch descriptor: bad magic")
	}
	s := &BatchSpec{Sink: uint8(d.u()), Width: d.u()}
	nf := d.u()
	for i := uint64(0); i < nf && d.err == nil; i++ {
		s.Filters = append(s.Filters, d.expr(0))
	}
	nk := d.u()
	for i := uint64(0); i < nk && d.err == nil; i++ {
		k := BatchKey{Off: int64(d.u()), Ty: BatchType(d.u())}
		k.E = d.expr(0)
		s.Keys = append(s.Keys, k)
	}
	na := d.u()
	for i := uint64(0); i < na && d.err == nil; i++ {
		a := BatchAgg{Fn: uint8(d.u()), Ty: BatchType(d.u()), Off: int64(d.u()), COff: int64(d.u())}
		if d.u() != 0 {
			a.Arg = d.expr(0)
		}
		s.Aggs = append(s.Aggs, a)
	}
	np := d.u()
	for i := uint64(0); i < np && d.err == nil; i++ {
		s.Payload = append(s.Payload, BatchCol{Off: int64(d.u()), Base: d.u(), Elem: d.u()})
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// --------------------------------------------------------------------------
// Kernel execution.
// --------------------------------------------------------------------------

// batchProg is a prepared kernel: the decoded spec plus flattened column
// references for the per-morsel bounds pre-check, and reusable scratch.
type batchProg struct {
	spec *BatchSpec
	cols []*BatchExpr
	sel  []int64
	hash []uint64
}

func collectCols(e *BatchExpr, out *[]*BatchExpr) {
	if e == nil {
		return
	}
	if e.Kind == BECol {
		*out = append(*out, e)
	}
	collectCols(e.L, out)
	collectCols(e.R, out)
	collectCols(e.H, out)
}

func (db *DB) batchPrepare(desc []byte) (*batchProg, error) {
	spec, err := DecodeBatchSpec(desc)
	if err != nil {
		return nil, err
	}
	bp := &batchProg{spec: spec}
	for _, f := range spec.Filters {
		collectCols(f, &bp.cols)
	}
	for _, k := range spec.Keys {
		collectCols(k.E, &bp.cols)
	}
	for _, a := range spec.Aggs {
		collectCols(a.Arg, &bp.cols)
	}
	return bp, nil
}

// bVals holds one expression's values over the selection vector, in the
// slice matching its type. Strings are the 16-byte value halves (lo, hi).
type bVals struct {
	i []int64
	d []I128
	f []float64
	s [][2]uint64
}

// bEval evaluates e over the selected rows. It returns the values and the
// sel-index of the first trapping row (-1 if none) with its trap; values at
// and after a trapping index are unspecified. Evaluation order per row
// matches the tuple code: left operand, right operand, then the operation.
func (db *DB) bEval(e *BatchExpr, sel []int64) (bVals, int, error) {
	n := len(sel)
	mem := db.M.Mem
	var v bVals
	switch e.Kind {
	case BEConst:
		switch e.Ty {
		case BTInt:
			v.i = make([]int64, n)
			for k := range v.i {
				v.i[k] = e.I
			}
		case BTI128:
			v.d = make([]I128, n)
			for k := range v.d {
				v.d[k] = e.D
			}
		case BTF64:
			v.f = make([]float64, n)
			for k := range v.f {
				v.f[k] = e.F
			}
		default:
			return v, 0, fmt.Errorf("rt: batch: const of type %d not evaluable", e.Ty)
		}
		return v, -1, nil
	case BECol:
		switch e.Ty {
		case BTInt:
			v.i = make([]int64, n)
			switch e.Elem {
			case 1:
				for k, r := range sel {
					v.i[k] = int64(int8(mem[e.Base+uint64(r)]))
				}
			case 2:
				for k, r := range sel {
					a := e.Base + uint64(r)*2
					v.i[k] = int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8))
				}
			case 4:
				for k, r := range sel {
					v.i[k] = int64(int32(le32(mem[e.Base+uint64(r)*4:])))
				}
			case 8:
				for k, r := range sel {
					v.i[k] = int64(le64(mem[e.Base+uint64(r)*8:]))
				}
			default:
				return v, 0, fmt.Errorf("rt: batch: bad int column width %d", e.Elem)
			}
		case BTI128:
			v.d = make([]I128, n)
			for k, r := range sel {
				a := e.Base + uint64(r)*16
				v.d[k] = I128{Lo: le64(mem[a:]), Hi: le64(mem[a+8:])}
			}
		case BTF64:
			v.f = make([]float64, n)
			for k, r := range sel {
				v.f[k] = fbits(le64(mem[e.Base+uint64(r)*8:]))
			}
		case BTStr:
			v.s = make([][2]uint64, n)
			for k, r := range sel {
				a := e.Base + uint64(r)*16
				v.s[k] = [2]uint64{le64(mem[a:]), le64(mem[a+8:])}
			}
		}
		return v, -1, nil
	case BEArith:
		lv, tL, errL := db.bEval(e.L, sel)
		rv, tR, errR := db.bEval(e.R, sel)
		stop := n
		if tL >= 0 && tL < stop {
			stop = tL
		}
		if tR >= 0 && tR < stop {
			stop = tR
		}
		switch e.Ty {
		case BTInt:
			v.i = make([]int64, n)
			for k := 0; k < stop; k++ {
				a, b := lv.i[k], rv.i[k]
				var r int64
				var ov bool
				switch e.Op {
				case BArithAdd:
					r = a + b
					ov = (r^a)&(r^b) < 0
				case BArithSub:
					r = a - b
					ov = (a^b)&(r^a) < 0
				default:
					hi, lo := bits.Mul64(uint64(a), uint64(b))
					if a < 0 {
						hi -= uint64(b)
					}
					if b < 0 {
						hi -= uint64(a)
					}
					r = int64(lo)
					ov = int64(hi) != r>>63
				}
				if ov {
					return v, k, &vm.Trap{Code: vt.TrapOverflow}
				}
				v.i[k] = r
			}
		case BTI128:
			v.d = make([]I128, n)
			for k := 0; k < stop; k++ {
				a, b := lv.d[k], rv.d[k]
				var r I128
				var ov bool
				switch e.Op {
				case BArithAdd:
					r = a.Add(b)
					ov = (r.Hi^a.Hi)&(r.Hi^b.Hi)&(1<<63) != 0
				case BArithSub:
					r = a.Sub(b)
					ov = (a.Hi^b.Hi)&(r.Hi^a.Hi)&(1<<63) != 0
				default:
					r, ov = a.MulCheck(b)
					if ov {
						return v, k, &vm.Trap{Code: vt.TrapOverflow, Msg: "128-bit multiplication"}
					}
				}
				if ov {
					return v, k, &vm.Trap{Code: vt.TrapOverflow}
				}
				v.d[k] = r
			}
		case BTF64:
			v.f = make([]float64, n)
			for k := 0; k < stop; k++ {
				a, b := lv.f[k], rv.f[k]
				switch e.Op {
				case BArithAdd:
					v.f[k] = a + b
				case BArithSub:
					v.f[k] = a - b
				default:
					v.f[k] = a * b
				}
			}
		default:
			return v, 0, fmt.Errorf("rt: batch: arith over type %d", e.Ty)
		}
		// No operation trap before stop; the earliest operand trap (left
		// before right at the same row, matching evaluation order) wins.
		if tL >= 0 && tL == stop {
			return v, tL, errL
		}
		if tR >= 0 && tR == stop {
			return v, tR, errR
		}
		return v, -1, nil
	}
	return v, 0, fmt.Errorf("rt: batch: expr kind %d not evaluable as value", e.Kind)
}

// strEqRaw compares a 16-byte string value against raw bytes.
func (db *DB) strEqRaw(lo, hi uint64, b []byte) (bool, error) {
	n := uint64(uint32(lo))
	if n != uint64(len(b)) {
		return false, nil
	}
	if n <= 12 {
		var t [16]byte
		put64(t[:8], lo)
		put64(t[8:], hi)
		return string(t[4:4+n]) == string(b), nil
	}
	body, err := db.M.Bytes(hi, n)
	if err != nil {
		return false, err
	}
	return string(body) == string(b), nil
}

// strEqVals compares two 16-byte string values by content.
func (db *DB) strEqVals(alo, ahi, blo, bhi uint64) (bool, error) {
	an := uint64(uint32(alo))
	bn := uint64(uint32(blo))
	if an != bn {
		return false, nil
	}
	a, err := db.strBytes(alo, ahi)
	if err != nil {
		return false, err
	}
	b, err := db.strBytes(blo, bhi)
	if err != nil {
		return false, err
	}
	return string(a) == string(b), nil
}

func icmpOK(op uint8, c int) bool {
	switch op {
	case BCmpEQ:
		return c == 0
	case BCmpNE:
		return c != 0
	case BCmpLT:
		return c < 0
	case BCmpLE:
		return c <= 0
	case BCmpGT:
		return c > 0
	default:
		return c >= 0
	}
}

// bFilter refines the selection vector by one boolean conjunct, in place.
// Eligible filters are trap-free by construction (column and constant
// operands only); an error here indicates a kernel or descriptor bug.
func (db *DB) bFilter(e *BatchExpr, sel []int64) ([]int64, error) {
	switch e.Kind {
	case BEAnd:
		sel, err := db.bFilter(e.L, sel)
		if err != nil {
			return nil, err
		}
		return db.bFilter(e.R, sel)
	case BECmp:
		// A string constant operand stays raw in the descriptor (e.S) — it
		// has no 16-byte in-memory form, so it bypasses bEval and the BTStr
		// arm below compares against the raw bytes directly.
		var lv, rv bVals
		if e.Ty != BTStr || e.L.Kind != BEConst {
			v, tL, errL := db.bEval(e.L, sel)
			if tL >= 0 {
				return nil, errL
			}
			lv = v
		}
		if e.Ty != BTStr || e.R.Kind != BEConst {
			v, tR, errR := db.bEval(e.R, sel)
			if tR >= 0 {
				return nil, errR
			}
			rv = v
		}
		out := sel[:0]
		switch e.Ty {
		case BTInt:
			for k, r := range sel {
				a, b := lv.i[k], rv.i[k]
				c := 0
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
				if icmpOK(e.Op, c) {
					out = append(out, r)
				}
			}
		case BTI128:
			for k, r := range sel {
				if icmpOK(e.Op, lv.d[k].Cmp(rv.d[k])) {
					out = append(out, r)
				}
			}
		case BTF64:
			for k, r := range sel {
				a, b := lv.f[k], rv.f[k]
				var ok bool
				switch e.Op {
				case BCmpEQ:
					ok = a == b
				case BCmpNE:
					ok = a != b
				case BCmpLT:
					ok = a < b
				case BCmpLE:
					ok = a <= b
				case BCmpGT:
					ok = a > b
				default:
					ok = a >= b
				}
				if ok {
					out = append(out, r)
				}
			}
		case BTStr:
			// Only equality forms are batch-eligible; one side may be a
			// raw constant from the descriptor.
			for k, r := range sel {
				var eq bool
				var err error
				switch {
				case e.L.Kind == BEConst && e.R.Kind == BEConst:
					eq = string(e.L.S) == string(e.R.S)
				case e.R.Kind == BEConst:
					eq, err = db.strEqRaw(lv.s[k][0], lv.s[k][1], e.R.S)
				case e.L.Kind == BEConst:
					eq, err = db.strEqRaw(rv.s[k][0], rv.s[k][1], e.L.S)
				default:
					eq, err = db.strEqVals(lv.s[k][0], lv.s[k][1], rv.s[k][0], rv.s[k][1])
				}
				if err != nil {
					return nil, err
				}
				if (e.Op == BCmpEQ) == eq {
					out = append(out, r)
				}
			}
		}
		return out, nil
	case BEBetween:
		// All three operands evaluate, then (v >= lo) AND (v <= hi) — the
		// tuple expansion is non-short-circuit.
		vv, tV, errV := db.bEval(e.L, sel)
		if tV >= 0 {
			return nil, errV
		}
		lv, tLo, errLo := db.bEval(e.R, sel)
		if tLo >= 0 {
			return nil, errLo
		}
		hv, tHi, errHi := db.bEval(e.H, sel)
		if tHi >= 0 {
			return nil, errHi
		}
		out := sel[:0]
		switch e.Ty {
		case BTInt:
			for k, r := range sel {
				if vv.i[k] >= lv.i[k] && vv.i[k] <= hv.i[k] {
					out = append(out, r)
				}
			}
		case BTI128:
			for k, r := range sel {
				if vv.d[k].Cmp(lv.d[k]) >= 0 && vv.d[k].Cmp(hv.d[k]) <= 0 {
					out = append(out, r)
				}
			}
		case BTF64:
			for k, r := range sel {
				if vv.f[k] >= lv.f[k] && vv.f[k] <= hv.f[k] {
					out = append(out, r)
				}
			}
		default:
			return nil, fmt.Errorf("rt: batch: between over type %d", e.Ty)
		}
		return out, nil
	}
	return nil, fmt.Errorf("rt: batch: expr kind %d is not a filter", e.Kind)
}

// batchStrHash replicates FnStrHash: CRC32C of the bytes with the length
// folded into the upper word.
func (db *DB) batchStrHash(lo, hi uint64) (uint64, error) {
	s, err := db.strBytes(lo, hi)
	if err != nil {
		return 0, err
	}
	return uint64(crc32.Update(0, crcTable, s)) | uint64(len(s))<<32, nil
}

func crc8(seed, v uint64) uint64 {
	var b [8]byte
	put64(b[:], v)
	return uint64(crc32.Update(uint32(seed), crcTable, b[:]))
}

// batchHashes computes the key-tuple hash for rows [0, stop): CRC32C
// folding per 64-bit word with the final long-mul-fold mix, exactly the
// chain hashKeys emits.
func (db *DB) batchHashes(keys []BatchKey, keyV []bVals, stop int, out []uint64) error {
	for k := 0; k < stop; k++ {
		h := uint64(0)
		for i := range keys {
			switch keys[i].Ty {
			case BTStr:
				sh, err := db.batchStrHash(keyV[i].s[k][0], keyV[i].s[k][1])
				if err != nil {
					return err
				}
				h = crc8(h, sh)
			case BTI128:
				h = crc8(h, keyV[i].d[k].Lo)
				h = crc8(h, keyV[i].d[k].Hi)
			case BTF64:
				h = crc8(h, toBits(keyV[i].f[k]))
			default:
				h = crc8(h, uint64(keyV[i].i[k]))
			}
		}
		mhi, mlo := bits.Mul64(h, 0x2545F4914F6CDD1D)
		out[k] = mlo ^ mhi
	}
	return nil
}

// batchKeysEqual compares the stored widened key slots at payload p against
// row k of the evaluated keys, replicating the generated chain-walk
// comparison (string keys by content, everything else on the 64-bit words).
func (db *DB) batchKeysEqual(keys []BatchKey, keyV []bVals, k int, p uint64) (bool, error) {
	mem := db.M.Mem
	for i := range keys {
		off := p + uint64(keys[i].Off)
		switch keys[i].Ty {
		case BTStr:
			eq, err := db.strEqVals(le64(mem[off:]), le64(mem[off+8:]), keyV[i].s[k][0], keyV[i].s[k][1])
			if err != nil || !eq {
				return false, err
			}
		case BTI128:
			if le64(mem[off:]) != keyV[i].d[k].Lo || le64(mem[off+8:]) != keyV[i].d[k].Hi {
				return false, nil
			}
		case BTF64:
			if fbits(le64(mem[off:])) != keyV[i].f[k] {
				return false, nil
			}
		default:
			if int64(le64(mem[off:])) != keyV[i].i[k] {
				return false, nil
			}
		}
	}
	return true, nil
}

// batchExec runs the prepared kernel over table rows [lo, hi): bounds
// pre-check, selection-vector filtering, vectorized key/argument
// evaluation, then the row-ordered sink loop. On a trapping row, every
// earlier row's sink effect has been applied and the row's own has not —
// the same partial state tuple-at-a-time execution leaves behind.
func (db *DB) batchExec(bp *batchProg, ht *hashTable, lo, hi int64) error {
	ctrBatchCalls.Inc()
	if hi > lo {
		ctrBatchRows.Add(hi - lo)
	}
	if hi <= lo {
		return nil
	}
	spec := bp.spec
	for _, c := range bp.cols {
		if _, err := db.M.Bytes(c.Base+uint64(lo)*c.Elem, uint64(hi-lo)*c.Elem); err != nil {
			return err
		}
	}
	for _, p := range spec.Payload {
		if _, err := db.M.Bytes(p.Base+uint64(lo)*p.Elem, uint64(hi-lo)*p.Elem); err != nil {
			return err
		}
	}

	if cap(bp.sel) < int(hi-lo) {
		bp.sel = make([]int64, hi-lo)
	}
	sel := bp.sel[:hi-lo]
	for i := range sel {
		sel[i] = lo + int64(i)
	}
	var err error
	for _, f := range spec.Filters {
		sel, err = db.bFilter(f, sel)
		if err != nil {
			return err
		}
		if len(sel) == 0 {
			return nil
		}
	}

	// Keys, then aggregate arguments, in tuple evaluation order; the
	// earliest trapping row across all expressions (ties to the earlier
	// expression) bounds how many rows reach the sink.
	trapAt, trapErr := len(sel), error(nil)
	note := func(t int, err error) {
		if t >= 0 && t < trapAt {
			trapAt, trapErr = t, err
		}
	}
	keyV := make([]bVals, len(spec.Keys))
	for i := range spec.Keys {
		v, t, kerr := db.bEval(spec.Keys[i].E, sel)
		keyV[i] = v
		note(t, kerr)
	}
	argV := make([]bVals, len(spec.Aggs))
	for i := range spec.Aggs {
		if spec.Aggs[i].Arg != nil {
			v, t, aerr := db.bEval(spec.Aggs[i].Arg, sel)
			argV[i] = v
			note(t, aerr)
		}
	}
	stop := trapAt

	if cap(bp.hash) < stop {
		bp.hash = make([]uint64, stop)
	}
	hashes := bp.hash[:stop]
	if err := db.batchHashes(spec.Keys, keyV, stop, hashes); err != nil {
		return err
	}

	switch spec.Sink {
	case BatchSinkAgg:
		err = db.batchAggSink(spec, ht, keyV, argV, stop, hashes)
	case BatchSinkBuild:
		err = db.batchBuildSink(spec, ht, keyV, sel, stop, hashes)
	default:
		err = fmt.Errorf("rt: batch: bad sink kind %d", spec.Sink)
	}
	if err != nil {
		return err
	}
	if trapErr != nil {
		return trapErr
	}
	return nil
}

func (db *DB) storeKeys(keys []BatchKey, keyV []bVals, k int, p uint64) {
	mem := db.M.Mem
	for i := range keys {
		off := p + uint64(keys[i].Off)
		switch keys[i].Ty {
		case BTStr:
			put64(mem[off:], keyV[i].s[k][0])
			put64(mem[off+8:], keyV[i].s[k][1])
		case BTI128:
			put64(mem[off:], keyV[i].d[k].Lo)
			put64(mem[off+8:], keyV[i].d[k].Hi)
		case BTF64:
			put64(mem[off:], toBits(keyV[i].f[k]))
		default:
			put64(mem[off:], uint64(keyV[i].i[k]))
		}
	}
}

// batchAggSink is the aggregation sink: per surviving row, probe the group
// table and update (with the tuple code's overflow traps, in aggregate
// order) or insert a fresh group.
func (db *DB) batchAggSink(spec *BatchSpec, ht *hashTable, keyV, argV []bVals, stop int, hashes []uint64) error {
	mem := db.M.Mem
	for k := 0; k < stop; k++ {
		h := hashes[k]
		p := db.htLookup(ht, h)
		for p != 0 {
			if le64(mem[p-8:]) == h {
				eq, err := db.batchKeysEqual(spec.Keys, keyV, k, p)
				if err != nil {
					return err
				}
				if eq {
					break
				}
			}
			p = le64(mem[p-entryHeader:])
		}
		if p != 0 {
			// Found: update in place, aggregate by aggregate.
			for i := range spec.Aggs {
				a := &spec.Aggs[i]
				off := p + uint64(a.Off)
				switch a.Fn {
				case BAggCount:
					put64(mem[off:], le64(mem[off:])+1)
				case BAggSum, BAggAvg:
					switch a.Ty {
					case BTF64:
						put64(mem[off:], toBits(fbits(le64(mem[off:]))+argV[i].f[k]))
					case BTI128:
						cur := I128{Lo: le64(mem[off:]), Hi: le64(mem[off+8:])}
						v := argV[i].d[k]
						r := cur.Add(v)
						if (r.Hi^cur.Hi)&(r.Hi^v.Hi)&(1<<63) != 0 {
							return &vm.Trap{Code: vt.TrapOverflow}
						}
						put64(mem[off:], r.Lo)
						put64(mem[off+8:], r.Hi)
					default:
						cur := int64(le64(mem[off:]))
						v := argV[i].i[k]
						s := cur + v
						if (s^cur)&(s^v) < 0 {
							return &vm.Trap{Code: vt.TrapOverflow}
						}
						put64(mem[off:], uint64(s))
					}
					if a.Fn == BAggAvg {
						coff := p + uint64(a.COff)
						put64(mem[coff:], le64(mem[coff:])+1)
					}
				case BAggMin, BAggMax:
					switch a.Ty {
					case BTF64:
						cur := fbits(le64(mem[off:]))
						v := argV[i].f[k]
						better := v < cur
						if a.Fn == BAggMax {
							better = v > cur
						}
						if better {
							put64(mem[off:], toBits(v))
						}
					case BTI128:
						cur := I128{Lo: le64(mem[off:]), Hi: le64(mem[off+8:])}
						v := argV[i].d[k]
						c := v.Cmp(cur)
						if (a.Fn == BAggMin && c < 0) || (a.Fn == BAggMax && c > 0) {
							put64(mem[off:], v.Lo)
							put64(mem[off+8:], v.Hi)
						}
					default:
						cur := int64(le64(mem[off:]))
						v := argV[i].i[k]
						if (a.Fn == BAggMin && v < cur) || (a.Fn == BAggMax && v > cur) {
							put64(mem[off:], uint64(v))
						}
					}
				}
			}
		} else {
			// Miss: insert a fresh group with the initial aggregate state.
			np := db.htInsert(ht, h)
			mem = db.M.Mem // htInsert may grow machine memory
			db.storeKeys(spec.Keys, keyV, k, np)
			for i := range spec.Aggs {
				a := &spec.Aggs[i]
				off := np + uint64(a.Off)
				switch a.Fn {
				case BAggCount:
					put64(mem[off:], 1)
				case BAggSum, BAggMin, BAggMax, BAggAvg:
					switch a.Ty {
					case BTF64:
						put64(mem[off:], toBits(argV[i].f[k]))
					case BTI128:
						put64(mem[off:], argV[i].d[k].Lo)
						put64(mem[off+8:], argV[i].d[k].Hi)
					default:
						put64(mem[off:], uint64(argV[i].i[k]))
					}
					if a.Fn == BAggAvg {
						put64(mem[np+uint64(a.COff):], 1)
					}
				}
			}
		}
	}
	return nil
}

// batchBuildSink is the join-build sink: insert every surviving row with
// widened keys and a verbatim copy of the payload columns.
func (db *DB) batchBuildSink(spec *BatchSpec, ht *hashTable, keyV []bVals, sel []int64, stop int, hashes []uint64) error {
	for k := 0; k < stop; k++ {
		np := db.htInsert(ht, hashes[k])
		mem := db.M.Mem
		db.storeKeys(spec.Keys, keyV, k, np)
		r := uint64(sel[k])
		for _, pc := range spec.Payload {
			dst := np + uint64(pc.Off)
			src := pc.Base + r*pc.Elem
			copy(mem[dst:dst+pc.Elem], mem[src:src+pc.Elem])
		}
	}
	return nil
}
