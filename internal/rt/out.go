package rt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OutKind tags the type of an output value.
type OutKind uint8

// Output value kinds.
const (
	OutI64 OutKind = iota
	OutI128Kind
	OutF64Kind
	OutStrKind
)

// OutVal is one output column value.
type OutVal struct {
	Kind OutKind
	I    int64
	V128 I128
	F    float64
	S    string
}

// String renders the value canonically (used to compare result sets across
// back-ends).
func (v OutVal) String() string {
	switch v.Kind {
	case OutI64:
		return fmt.Sprintf("%d", v.I)
	case OutI128Kind:
		return v.V128.DecString()
	case OutF64Kind:
		return fmt.Sprintf("%.4f", v.F)
	case OutStrKind:
		return v.S
	}
	return "?"
}

// DecString renders a signed 128-bit value in decimal.
func (a I128) DecString() string {
	if a.Lo == 0 && a.Hi == 0 {
		return "0"
	}
	neg := a.IsNeg()
	u := a
	if neg {
		u = u.Neg()
	}
	var digits []byte
	ten := I128{Lo: 10}
	for u.Lo != 0 || u.Hi != 0 {
		q := u.Div(ten)
		r := u.Sub(q.Mul(ten))
		digits = append(digits, byte('0'+r.Lo))
		u = q
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}

// OutBuffer collects query result rows.
type OutBuffer struct {
	Rows [][]OutVal
	cur  []OutVal
}

// Reset discards all rows.
func (o *OutBuffer) Reset() {
	o.Rows = nil
	o.cur = nil
}

// BeginRow starts a new row.
func (o *OutBuffer) BeginRow() { o.cur = o.cur[:0] }

// AddI64 appends an integer column to the current row.
func (o *OutBuffer) AddI64(v int64) { o.cur = append(o.cur, OutVal{Kind: OutI64, I: v}) }

// AddI128 appends a decimal column to the current row.
func (o *OutBuffer) AddI128(v I128) { o.cur = append(o.cur, OutVal{Kind: OutI128Kind, V128: v}) }

// AddF64 appends a float column to the current row.
func (o *OutBuffer) AddF64(v float64) { o.cur = append(o.cur, OutVal{Kind: OutF64Kind, F: v}) }

// AddStr appends a string column to the current row.
func (o *OutBuffer) AddStr(s string) { o.cur = append(o.cur, OutVal{Kind: OutStrKind, S: s}) }

// EndRow commits the current row.
func (o *OutBuffer) EndRow() {
	row := make([]OutVal, len(o.cur))
	copy(row, o.cur)
	o.Rows = append(o.Rows, row)
}

// NumRows returns the committed row count.
func (o *OutBuffer) NumRows() int { return len(o.Rows) }

// DrainRows returns the committed rows and clears the buffer. The
// morsel-parallel executor drains each worker's buffer after every morsel so
// rows can be re-ordered deterministically by morsel index.
func (o *OutBuffer) DrainRows() [][]OutVal {
	rows := o.Rows
	o.Rows = nil
	return rows
}

// AppendRows appends previously drained rows.
func (o *OutBuffer) AppendRows(rows [][]OutVal) {
	o.Rows = append(o.Rows, rows...)
}

// Ordered renders all rows as text lines in row order (unlike Canonical,
// which sorts). The sequential-vs-parallel differential uses it: the
// executor must reproduce the sequential output order exactly.
func (o *OutBuffer) Ordered() []string {
	lines := make([]string, len(o.Rows))
	for i, row := range o.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	return lines
}

// Canonical renders all rows as sorted text lines, for cross-back-end result
// comparison independent of row order.
func (o *OutBuffer) Canonical() []string {
	lines := make([]string, len(o.Rows))
	for i, row := range o.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return lines
}

func fbits(u uint64) float64 { return math.Float64frombits(u) }
