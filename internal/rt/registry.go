package rt

import (
	"hash/crc32"
	"math/bits"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Names of all runtime functions callable from generated code. Code
// generators reference these names; Bind resolves them to ids.
const (
	FnAlloc     = "alloc"
	FnOutBegin  = "out_begin"
	FnOutI64    = "out_i64"
	FnOutI128   = "out_i128"
	FnOutF64    = "out_f64"
	FnOutStr    = "out_str"
	FnOutRow    = "out_row"
	FnHTCreate  = "ht_create"
	FnAggCreate = "agg_create"
	FnHTInsert  = "ht_insert"
	FnHTFinal   = "ht_finalize"
	FnHTLookup  = "ht_lookup"
	FnVecCreate = "vec_create"
	FnVecAppend = "vec_append"
	FnVecData   = "vec_data"
	FnVecCount  = "vec_count"
	FnSortCB    = "sort_cb"
	FnSortI64   = "sort_i64"
	FnStrEq     = "str_eq"
	FnStrCmp    = "str_cmp"
	FnStrLike   = "str_like"
	FnStrHash   = "str_hash"
	FnStrConcat = "str_concat"
	FnI128Div   = "i128_div"
	FnI128MulOv = "i128_mul_ov"
	FnI128Rem   = "i128_rem"
	FnOverflow  = "throw_overflow"
	FnHTEntry   = "ht_entry"

	// Batch (vectorized) kernels: prepare decodes a serialized BatchSpec
	// into a kernel program handle during pipeline setup; exec runs the
	// kernel over one morsel against the pipeline's sink hash table.
	FnBatchPrep = "batch_prepare"
	FnBatchExec = "batch_exec"

	// Helper functions used by back-ends that lack dedicated instructions
	// for these operations (the Cranelift custom-instruction ablation of
	// Table II lowers to these).
	FnCrc32Help = "crc32_helper"
	FnAddOv64   = "sadd_ov64"
	FnSubOv64   = "ssub_ov64"
	FnMulOv64   = "smul_ov64"
	FnMulWide   = "mul_wide"
)

// impl builds the handler for one runtime function name, or nil if unknown.
func (db *DB) impl(name string) vm.RTFunc {
	switch name {
	case FnAlloc:
		return func(m *vm.Machine) error {
			db.ret(db.M.Alloc(db.arg(0)))
			return nil
		}
	case FnOutBegin:
		return func(m *vm.Machine) error {
			db.Out.BeginRow()
			return nil
		}
	case FnOutI64:
		return func(m *vm.Machine) error {
			db.Out.AddI64(int64(db.arg(0)))
			return nil
		}
	case FnOutI128:
		return func(m *vm.Machine) error {
			db.Out.AddI128(I128{Lo: db.arg(0), Hi: db.arg(1)})
			return nil
		}
	case FnOutF64:
		return func(m *vm.Machine) error {
			db.Out.AddF64(fbits(db.arg(0)))
			return nil
		}
	case FnOutStr:
		return func(m *vm.Machine) error {
			s, err := db.LoadString(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			db.Out.AddStr(s)
			return nil
		}
	case FnOutRow:
		return func(m *vm.Machine) error {
			db.Out.EndRow()
			return nil
		}
	case FnHTCreate:
		return func(m *vm.Machine) error {
			db.ret(db.htCreate(db.arg(0), false))
			return nil
		}
	case FnAggCreate:
		return func(m *vm.Machine) error {
			db.ret(db.htCreate(db.arg(0), true))
			return nil
		}
	case FnHTInsert:
		return func(m *vm.Machine) error {
			ht, ok := db.handle(db.arg(0)).(*hashTable)
			if !ok {
				return db.badHandle("ht_insert", db.arg(0))
			}
			db.ret(db.htInsert(ht, db.arg(1)))
			return nil
		}
	case FnHTFinal:
		return func(m *vm.Machine) error {
			ht, ok := db.handle(db.arg(0)).(*hashTable)
			if !ok {
				return db.badHandle("ht_finalize", db.arg(0))
			}
			db.htFinalize(ht)
			return nil
		}
	case FnHTLookup:
		return func(m *vm.Machine) error {
			ht, ok := db.handle(db.arg(0)).(*hashTable)
			if !ok {
				return db.badHandle("ht_lookup", db.arg(0))
			}
			db.ret(db.htLookup(ht, db.arg(1)))
			return nil
		}
	case FnVecCreate:
		return func(m *vm.Machine) error {
			db.ret(db.newHandle(&vector{width: db.arg(0)}))
			return nil
		}
	case FnVecAppend:
		return func(m *vm.Machine) error {
			v, ok := db.handle(db.arg(0)).(*vector)
			if !ok {
				return db.badHandle("vec_append", db.arg(0))
			}
			db.ret(db.vecAppend(v))
			return nil
		}
	case FnVecData:
		return func(m *vm.Machine) error {
			v, ok := db.handle(db.arg(0)).(*vector)
			if !ok {
				return db.badHandle("vec_data", db.arg(0))
			}
			db.ret(v.base)
			return nil
		}
	case FnVecCount:
		return func(m *vm.Machine) error {
			v, ok := db.handle(db.arg(0)).(*vector)
			if !ok {
				return db.badHandle("vec_count", db.arg(0))
			}
			db.ret(v.count)
			return nil
		}
	case FnSortCB:
		return func(m *vm.Machine) error {
			v, ok := db.handle(db.arg(0)).(*vector)
			if !ok {
				return db.badHandle("sort_cb", db.arg(0))
			}
			return db.sortVec(v, db.arg(1), true, 0, false)
		}
	case FnSortI64:
		return func(m *vm.Machine) error {
			v, ok := db.handle(db.arg(0)).(*vector)
			if !ok {
				return db.badHandle("sort_i64", db.arg(0))
			}
			return db.sortVec(v, 0, false, db.arg(1), db.arg(2) != 0)
		}
	case FnStrEq:
		return func(m *vm.Machine) error {
			a, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			b, err := db.strBytes(db.arg(2), db.arg(3))
			if err != nil {
				return err
			}
			db.ret(b2u(string(a) == string(b)))
			return nil
		}
	case FnStrCmp:
		return func(m *vm.Machine) error {
			a, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			b, err := db.strBytes(db.arg(2), db.arg(3))
			if err != nil {
				return err
			}
			db.ret(uint64(int64(cmpBytes(a, b))))
			return nil
		}
	case FnStrLike:
		return func(m *vm.Machine) error {
			s, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			p, err := db.strBytes(db.arg(2), db.arg(3))
			if err != nil {
				return err
			}
			db.ret(b2u(likeMatch(s, p)))
			return nil
		}
	case FnStrHash:
		return func(m *vm.Machine) error {
			s, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			h := crc32.Update(0, crcTable, s)
			db.ret(uint64(h) | uint64(len(s))<<32)
			return nil
		}
	case FnStrConcat:
		return func(m *vm.Machine) error {
			a, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			b, err := db.strBytes(db.arg(2), db.arg(3))
			if err != nil {
				return err
			}
			lo, hi := db.makeString(string(a) + string(b))
			db.ret2(lo, hi)
			return nil
		}
	case FnI128Div:
		return func(m *vm.Machine) error {
			a := I128{Lo: db.arg(0), Hi: db.arg(1)}
			b := I128{Lo: db.arg(2), Hi: db.arg(3)}
			if b.Lo == 0 && b.Hi == 0 {
				return &vm.Trap{Code: vt.TrapDivZero}
			}
			q := a.Div(b)
			db.ret2(q.Lo, q.Hi)
			return nil
		}
	case FnI128Rem:
		return func(m *vm.Machine) error {
			a := I128{Lo: db.arg(0), Hi: db.arg(1)}
			b := I128{Lo: db.arg(2), Hi: db.arg(3)}
			if b.Lo == 0 && b.Hi == 0 {
				return &vm.Trap{Code: vt.TrapDivZero}
			}
			q := a.Div(b)
			r := a.Sub(q.Mul(b))
			db.ret2(r.Lo, r.Hi)
			return nil
		}
	case FnI128MulOv:
		return func(m *vm.Machine) error {
			a := I128{Lo: db.arg(0), Hi: db.arg(1)}
			b := I128{Lo: db.arg(2), Hi: db.arg(3)}
			r, ov := a.MulCheck(b)
			if ov {
				return &vm.Trap{Code: vt.TrapOverflow, Msg: "128-bit multiplication"}
			}
			db.ret2(r.Lo, r.Hi)
			return nil
		}
	case FnOverflow:
		return func(m *vm.Machine) error {
			return &vm.Trap{Code: vt.TrapOverflow}
		}
	case FnBatchPrep:
		return func(m *vm.Machine) error {
			desc, err := db.strBytes(db.arg(0), db.arg(1))
			if err != nil {
				return err
			}
			bp, err := db.batchPrepare(desc)
			if err != nil {
				return err
			}
			db.ret(db.newHandle(bp))
			return nil
		}
	case FnBatchExec:
		return func(m *vm.Machine) error {
			bp, ok := db.handle(db.arg(0)).(*batchProg)
			if !ok {
				return db.badHandle("batch_exec", db.arg(0))
			}
			ht, ok := db.handle(db.arg(1)).(*hashTable)
			if !ok {
				return db.badHandle("batch_exec sink", db.arg(1))
			}
			return db.batchExec(bp, ht, int64(db.arg(2)), int64(db.arg(3)))
		}
	case FnHTEntry:
		return func(m *vm.Machine) error {
			ht, ok := db.handle(db.arg(0)).(*hashTable)
			if !ok {
				return db.badHandle("ht_entry", db.arg(0))
			}
			i := db.arg(1)
			if i >= uint64(len(ht.entries)) {
				return &vm.Trap{Code: vt.TrapOOB, Msg: "ht_entry index"}
			}
			db.ret(ht.entries[i])
			return nil
		}
	case FnCrc32Help:
		return func(m *vm.Machine) error {
			var b [8]byte
			put64(b[:], db.arg(1))
			db.ret(uint64(crc32.Update(uint32(db.arg(0)), crcTable, b[:])))
			return nil
		}
	case FnAddOv64:
		return func(m *vm.Machine) error {
			a, b := int64(db.arg(0)), int64(db.arg(1))
			s := a + b
			if (s > a) != (b > 0) {
				return &vm.Trap{Code: vt.TrapOverflow}
			}
			db.ret(uint64(s))
			return nil
		}
	case FnSubOv64:
		return func(m *vm.Machine) error {
			a, b := int64(db.arg(0)), int64(db.arg(1))
			d := a - b
			if (d < a) != (b > 0) {
				return &vm.Trap{Code: vt.TrapOverflow}
			}
			db.ret(uint64(d))
			return nil
		}
	case FnMulOv64:
		return func(m *vm.Machine) error {
			a, b := int64(db.arg(0)), int64(db.arg(1))
			hi, lo := bits.Mul64(uint64(a), uint64(b))
			if a < 0 {
				hi -= uint64(b)
			}
			if b < 0 {
				hi -= uint64(a)
			}
			if int64(hi) != int64(lo)>>63 {
				return &vm.Trap{Code: vt.TrapOverflow}
			}
			db.ret(lo)
			return nil
		}
	case FnMulWide:
		return func(m *vm.Machine) error {
			hi, lo := bits.Mul64(db.arg(0), db.arg(1))
			db.ret2(lo, hi)
			return nil
		}
	}
	return nil
}

// HandleCount returns the number of entries in a hash table or vector
// handle; the execution driver uses it to size morsel loops over pipeline
// intermediates.
func (db *DB) HandleCount(id uint64) (int64, error) {
	switch h := db.handle(id).(type) {
	case *hashTable:
		return int64(len(h.entries)), nil
	case *vector:
		return int64(h.count), nil
	}
	return 0, db.badHandle("HandleCount", id)
}

// ReadU64 reads a 64-bit value from machine memory (driver access to query
// state).
func (db *DB) ReadU64(addr uint64) (uint64, error) {
	b, err := db.M.Bytes(addr, 8)
	if err != nil {
		return 0, err
	}
	return le64(b), nil
}

// Bind installs handlers for the given runtime-import name table (from a
// qir.Module) into the machine, returning the id-indexed table. Unknown
// names yield an error at bind time rather than a trap at run time.
func (db *DB) Bind(names []string) error {
	tbl := make([]vm.RTFunc, len(names))
	for i, n := range names {
		fn := db.impl(n)
		if fn == nil {
			return &UnknownRuntimeFunc{Name: n}
		}
		tbl[i] = fn
	}
	db.M.RT = tbl
	return nil
}

// UnknownRuntimeFunc reports a runtime-import name with no implementation.
type UnknownRuntimeFunc struct{ Name string }

func (e *UnknownRuntimeFunc) Error() string {
	return "rt: unknown runtime function " + e.Name
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte).
func likeMatch(s, p []byte) bool {
	// Iterative two-pointer algorithm with backtracking on %.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case star != -1:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
