// Package rt implements the database runtime that generated query code
// calls into: memory allocation, join and aggregation hash tables, row
// vectors, sorting (with comparator callbacks into generated code), string
// operations on the 16-byte by-value string representation, 128-bit decimal
// helpers, and the query output buffer.
//
// Runtime state lives in a DB bound to one vm.Machine. Bulk data (table
// columns, hash-table entries, string bodies) is stored in machine memory so
// that generated code reads and writes it directly; only bookkeeping (bucket
// directories, handles) is kept on the Go side, mirroring how Umbra's
// runtime keeps C++ objects next to raw buffers.
package rt

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// DB is the runtime environment for one machine.
type DB struct {
	M *vm.Machine
	// Out receives query results.
	Out *OutBuffer

	handles     []any // hash tables and vectors, indexed by handle id
	strings     map[string][2]uint64
	baseStrings map[string][2]uint64
	mark        uint64
	target      *vt.Target
	frozen      bool

	// poolBase is the machine address of the runtime constant-pool area
	// (ConstPoolSlots 16-byte slots). It is allocated eagerly in NewDB —
	// before any Checkpoint — so the address compiled code bakes in stays
	// valid across ResetToCheckpoint, which is what lets constant-only query
	// variants share cached code. Zero on worker DBs, which read the main
	// DB's pool through the shared machine memory.
	poolBase uint64

	// shared/ownerGID implement the concurrency-misuse guard: while a DB is
	// frozen (parallel compilation) or shared with the morsel-parallel
	// executor, mutating its handle table from any goroutine but the owner
	// panics loudly instead of racing (mirroring the obs Fork/Adopt guard).
	shared   bool
	ownerGID int64

	// stamping assigns every hash-table insert and vector append a
	// monotonically increasing stamp ((morsel index << 32) | sequence).
	// Worker DBs run with stamping on so the executor can merge
	// partition-local sinks back into the sequential insertion order.
	stamping  bool
	stampNext uint64
}

// Freeze marks the compile-time intern table read-only: interning a string
// that is not already materialized panics until Unfreeze. The parallel
// compilation driver freezes the DB while worker goroutines compile, so a
// back-end that forgot to pre-intern a constant in BeginModule fails loudly
// instead of racing on the intern map and the machine allocator.
func (db *DB) Freeze() {
	db.frozen = true
	db.ownerGID = goid()
}
func (db *DB) Unfreeze() { db.frozen = false }

// ShareForExec marks the DB as shared with the morsel-parallel executor:
// until EndShare, handle-table mutation from any other goroutine panics.
// The calling goroutine becomes the owner.
func (db *DB) ShareForExec() {
	db.shared = true
	db.ownerGID = goid()
}

// EndShare lifts the ShareForExec guard.
func (db *DB) EndShare() { db.shared = false }

// checkOwner panics when a frozen or shared DB is mutated off its owner
// goroutine. Only rare structural mutations (handle creation) are guarded —
// the check parses the runtime stack for the goroutine id, far too slow for
// per-row paths, and per-row mutations always follow a handle creation.
func (db *DB) checkOwner(op string) {
	if (db.frozen || db.shared) && goid() != db.ownerGID {
		panic("rt: " + op + " on a frozen/shared DB from a non-owner goroutine; " +
			"parallel executor workers must mutate only their own worker DB (NewWorkerDB)")
	}
}

// goid parses the current goroutine's id from the runtime stack header
// ("goroutine N [running]:"); only taken on guarded structural mutations.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// NewDB creates a runtime environment on machine m.
func NewDB(m *vm.Machine) *DB {
	db := &DB{
		M:       m,
		Out:     &OutBuffer{},
		strings: make(map[string][2]uint64),
		target:  m.Target(),
	}
	// The constant-pool area is allocated up front, never lazily: it must
	// sit below every Checkpoint mark so its address survives
	// ResetToCheckpoint and stays a stable compile-time immediate.
	db.poolBase = m.Alloc(ConstPoolSlots * constPoolSlotBytes)
	return db
}

// arg returns the i-th integer argument register value.
func (db *DB) arg(i int) uint64 { return db.M.R[db.target.IntArgs[i]] }

// ret sets the return registers.
func (db *DB) ret(v uint64) { db.M.R[db.target.IntRet[0]] = v }

func (db *DB) ret2(lo, hi uint64) {
	db.M.R[db.target.IntRet[0]] = lo
	db.M.R[db.target.IntRet[1]] = hi
}

func (db *DB) handle(id uint64) any {
	if id == 0 || int(id) > len(db.handles) {
		return nil
	}
	return db.handles[id-1]
}

func (db *DB) newHandle(v any) uint64 {
	db.checkOwner("handle-table mutation")
	db.handles = append(db.handles, v)
	return uint64(len(db.handles))
}

// ResetQueryState drops hash tables, vectors and output rows accumulated by
// a query execution, keeping loaded table data intact.
func (db *DB) ResetQueryState() {
	db.handles = db.handles[:0]
	db.Out.Reset()
}

// Checkpoint records the post-load state (heap position and interned
// strings) so the benchmark harness can roll back per-query allocations.
func (db *DB) Checkpoint() {
	db.mark = db.M.HeapMark()
	db.baseStrings = make(map[string][2]uint64, len(db.strings))
	for k, v := range db.strings {
		db.baseStrings[k] = v
	}
}

// ResetToCheckpoint releases everything allocated since Checkpoint: query
// heap allocations, hash-table/vector handles, output rows, and string
// constants interned by compiled queries (whose baked addresses die with
// their code).
func (db *DB) ResetToCheckpoint() {
	if db.baseStrings == nil {
		db.ResetQueryState()
		return
	}
	db.handles = db.handles[:0]
	db.Out.Reset()
	db.strings = make(map[string][2]uint64, len(db.baseStrings))
	for k, v := range db.baseStrings {
		db.strings[k] = v
	}
	db.M.ResetHeapTo(db.mark)
}

// InternString materializes a string constant into machine memory (if
// needed) and returns its 16-byte by-value representation as register
// halves. Back-ends call this at compile time to bake string constants into
// code, like a JIT baking addresses of process constants.
func (db *DB) InternString(s string) (lo, hi uint64) {
	if v, ok := db.strings[s]; ok {
		return v[0], v[1]
	}
	if db.frozen {
		panic("rt: InternString of un-pre-interned string during parallel compilation")
	}
	lo, hi = db.makeString(s)
	db.strings[s] = [2]uint64{lo, hi}
	return lo, hi
}

// makeString builds the 16-byte string struct: bytes 0-3 length; if length
// <= 12 the remainder holds the bytes inline, otherwise bytes 4-7 hold the
// prefix and bytes 8-15 a pointer to the body in machine memory.
func (db *DB) makeString(s string) (lo, hi uint64) {
	n := len(s)
	var b [16]byte
	put32(b[:], uint32(n))
	if n <= 12 {
		copy(b[4:], s)
	} else {
		copy(b[4:8], s[:4])
		addr := db.M.Alloc(uint64(n))
		copy(db.M.Mem[addr:addr+uint64(n)], s)
		put64(b[8:], addr)
	}
	return le64(b[:8]), le64(b[8:])
}

// LoadString decodes a 16-byte string value from its register halves.
func (db *DB) LoadString(lo, hi uint64) (string, error) {
	var b [16]byte
	put64(b[:8], lo)
	put64(b[8:], hi)
	n := le32(b[:4])
	if n <= 12 {
		return string(b[4 : 4+n]), nil
	}
	addr := le64(b[8:])
	body, err := db.M.Bytes(addr, uint64(n))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// strBytes returns the bytes of a string value without copying when it
// lives in machine memory.
func (db *DB) strBytes(lo, hi uint64) ([]byte, error) {
	n := uint64(uint32(lo))
	if n <= 12 {
		var b [16]byte
		put64(b[:8], lo)
		put64(b[8:], hi)
		out := make([]byte, n)
		copy(out, b[4:4+n])
		return out, nil
	}
	return db.M.Bytes(hi, n)
}

// --------------------------------------------------------------------------
// Hash tables.
//
// Entry layout in machine memory: [next:8][hash:8][payload:width]. Runtime
// calls return the payload address; generated code walks chains by loading
// next at payload-16 and the hash at payload-8, and compares keys inline.
// --------------------------------------------------------------------------

const entryHeader = 16

type hashTable struct {
	width   uint64   // payload width
	entries []uint64 // payload addresses, in insertion order
	buckets []uint64 // payload addresses, chained via next fields
	mask    uint64
	agg     bool
	// stamps[i] is the insertion stamp of entries[i] when the owning DB runs
	// with stamping enabled (worker DBs); empty otherwise.
	stamps []uint64
}

func (db *DB) htCreate(width uint64, agg bool) uint64 {
	ht := &hashTable{width: width, agg: agg}
	if agg {
		ht.buckets = make([]uint64, 64)
		ht.mask = 63
	}
	return db.newHandle(ht)
}

func (db *DB) htInsert(ht *hashTable, hash uint64) uint64 {
	addr := db.M.Alloc(entryHeader + ht.width)
	payload := addr + entryHeader
	put64(db.M.Mem[addr:], 0)      // next
	put64(db.M.Mem[addr+8:], hash) // hash
	for i := uint64(0); i < ht.width; i += 8 {
		put64(db.M.Mem[payload+i:], 0)
	}
	ht.entries = append(ht.entries, payload)
	if db.stamping {
		ht.stamps = append(ht.stamps, db.stampNext)
		db.stampNext++
	}
	if ht.agg {
		if uint64(len(ht.entries)) > ht.mask+1 {
			// Growing relinks every entry, including the new one; do
			// not link it a second time (that would make it its own
			// chain successor).
			db.htGrow(ht)
		} else {
			b := hash & ht.mask
			put64(db.M.Mem[addr:], ht.buckets[b]) // chain old head
			ht.buckets[b] = payload
		}
	}
	return payload
}

func (db *DB) htGrow(ht *hashTable) {
	n := uint64(len(ht.buckets)) * 2
	ht.buckets = make([]uint64, n)
	ht.mask = n - 1
	for _, p := range ht.entries {
		h := le64(db.M.Mem[p-8:])
		b := h & ht.mask
		put64(db.M.Mem[p-entryHeader:], ht.buckets[b])
		ht.buckets[b] = p
	}
}

func (db *DB) htFinalize(ht *hashTable) {
	n := uint64(1)
	for n < uint64(len(ht.entries))*2 {
		n *= 2
	}
	if n < 16 {
		n = 16
	}
	ht.buckets = make([]uint64, n)
	ht.mask = n - 1
	for _, p := range ht.entries {
		h := le64(db.M.Mem[p-8:])
		b := h & ht.mask
		put64(db.M.Mem[p-entryHeader:], ht.buckets[b])
		ht.buckets[b] = p
	}
}

func (db *DB) htLookup(ht *hashTable, hash uint64) uint64 {
	if ht.buckets == nil {
		return 0
	}
	return ht.buckets[hash&ht.mask]
}

// --------------------------------------------------------------------------
// Row vectors: contiguous fixed-width slots in machine memory.
// --------------------------------------------------------------------------

type vector struct {
	width uint64
	base  uint64
	count uint64
	cap   uint64
	// stamps[i] is the append stamp of slot i under a stamping DB.
	stamps []uint64
}

func (db *DB) vecAppend(v *vector) uint64 {
	if v.count == v.cap {
		newCap := v.cap * 2
		if newCap == 0 {
			newCap = 64
		}
		newBase := db.M.Alloc(newCap * v.width)
		copy(db.M.Mem[newBase:newBase+v.count*v.width], db.M.Mem[v.base:v.base+v.count*v.width])
		v.base, v.cap = newBase, newCap
	}
	slot := v.base + v.count*v.width
	v.count++
	if db.stamping {
		v.stamps = append(v.stamps, db.stampNext)
		db.stampNext++
	}
	return slot
}

// --------------------------------------------------------------------------
// 128-bit helpers.
// --------------------------------------------------------------------------

// I128 is a signed 128-bit integer as lo/hi halves (two's complement).
type I128 struct {
	Lo, Hi uint64
}

// I128FromInt64 sign-extends v.
func I128FromInt64(v int64) I128 {
	return I128{Lo: uint64(v), Hi: uint64(v >> 63)}
}

// Neg returns -a.
func (a I128) Neg() I128 {
	lo := -a.Lo
	hi := ^a.Hi
	if a.Lo == 0 {
		hi++
	}
	return I128{lo, hi}
}

// IsNeg reports whether a < 0.
func (a I128) IsNeg() bool { return int64(a.Hi) < 0 }

// Add returns a+b.
func (a I128) Add(b I128) I128 {
	lo, c := bits.Add64(a.Lo, b.Lo, 0)
	hi, _ := bits.Add64(a.Hi, b.Hi, c)
	return I128{lo, hi}
}

// Sub returns a-b.
func (a I128) Sub(b I128) I128 {
	lo, brw := bits.Sub64(a.Lo, b.Lo, 0)
	hi, _ := bits.Sub64(a.Hi, b.Hi, brw)
	return I128{lo, hi}
}

// Mul returns a*b truncated to 128 bits.
func (a I128) Mul(b I128) I128 {
	hi, lo := bits.Mul64(a.Lo, b.Lo)
	hi += a.Hi*b.Lo + a.Lo*b.Hi
	return I128{lo, hi}
}

// MulCheck returns a*b and whether the signed product overflowed.
func (a I128) MulCheck(b I128) (I128, bool) {
	neg := false
	ua, ub := a, b
	if ua.IsNeg() {
		ua = ua.Neg()
		neg = !neg
	}
	if ub.IsNeg() {
		ub = ub.Neg()
		neg = !neg
	}
	// Unsigned 128x128 with overflow detection.
	if ua.Hi != 0 && ub.Hi != 0 {
		return I128{}, true
	}
	carryHi, midLo := bits.Mul64(ua.Hi, ub.Lo)
	carryHi2, midLo2 := bits.Mul64(ua.Lo, ub.Hi)
	if carryHi != 0 || carryHi2 != 0 {
		return I128{}, true
	}
	hi, lo := bits.Mul64(ua.Lo, ub.Lo)
	hi2, c := bits.Add64(hi, midLo, 0)
	if c != 0 {
		return I128{}, true
	}
	hi3, c := bits.Add64(hi2, midLo2, 0)
	if c != 0 {
		return I128{}, true
	}
	r := I128{lo, hi3}
	if neg {
		r = r.Neg()
		if !r.IsNeg() && !(r.Lo == 0 && r.Hi == 0) {
			return I128{}, true
		}
	} else if r.IsNeg() {
		return I128{}, true
	}
	return r, false
}

// Div returns the signed quotient a/b, truncating toward zero.
// Division by zero must be checked by the caller.
func (a I128) Div(b I128) I128 {
	neg := false
	ua, ub := a, b
	if ua.IsNeg() {
		ua = ua.Neg()
		neg = !neg
	}
	if ub.IsNeg() {
		ub = ub.Neg()
		neg = !neg
	}
	q := udiv128(ua, ub)
	if neg {
		q = q.Neg()
	}
	return q
}

// Cmp returns -1, 0 or 1 comparing signed a and b.
func (a I128) Cmp(b I128) int {
	if int64(a.Hi) != int64(b.Hi) {
		if int64(a.Hi) < int64(b.Hi) {
			return -1
		}
		return 1
	}
	if a.Lo != b.Lo {
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	}
	return 0
}

func udiv128(a, b I128) I128 {
	if b.Hi == 0 {
		if b.Lo == 0 {
			panic("rt: division by zero")
		}
		if a.Hi < b.Lo {
			q, _ := bits.Div64(a.Hi, a.Lo, b.Lo)
			return I128{Lo: q}
		}
		qhi := a.Hi / b.Lo
		rem := a.Hi % b.Lo
		qlo, _ := bits.Div64(rem, a.Lo, b.Lo)
		return I128{Lo: qlo, Hi: qhi}
	}
	// b.Hi != 0: quotient fits in 64 bits; shift-subtract.
	var q I128
	rem := a
	for i := 127; i >= 0; i-- {
		// shifted = b << i; only feasible while i small because b.Hi!=0.
		if i > 63 {
			continue
		}
		var sh I128
		if i == 0 {
			sh = b
		} else {
			sh = I128{Lo: b.Lo << uint(i), Hi: b.Hi<<uint(i) | b.Lo>>uint(64-i)}
			if b.Hi>>(64-uint(i)) != 0 {
				continue // would overflow 128 bits
			}
		}
		if ucmp128(rem, sh) >= 0 {
			rem = rem.Sub(sh)
			if i >= 64 {
				q.Hi |= 1 << uint(i-64)
			} else {
				q.Lo |= 1 << uint(i)
			}
		}
	}
	return q
}

func ucmp128(a, b I128) int {
	if a.Hi != b.Hi {
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	if a.Lo != b.Lo {
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	}
	return 0
}

// --------------------------------------------------------------------------
// Little-endian helpers on byte slices.
// --------------------------------------------------------------------------

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

// sortVec sorts the entries of v. If useCB is set, cmpAddr is the code
// address of a generated comparator taking two payload addresses and
// returning a negative/zero/positive i64; otherwise entries are compared by
// the i64 at keyOff (descending when desc).
func (db *DB) sortVec(v *vector, cmpAddr uint64, useCB bool, keyOff uint64, desc bool) error {
	n := int(v.count)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var cbErr error
	less := func(i, j int) bool {
		a := v.base + uint64(idx[i])*v.width
		b := v.base + uint64(idx[j])*v.width
		if useCB {
			res, err := db.M.CallAt(cmpAddr, a, b)
			if err != nil && cbErr == nil {
				cbErr = err
			}
			return int64(res[0]) < 0
		}
		av := int64(le64(db.M.Mem[a+keyOff:]))
		bv := int64(le64(db.M.Mem[b+keyOff:]))
		if desc {
			return av > bv
		}
		return av < bv
	}
	sort.SliceStable(idx, less)
	if cbErr != nil {
		return cbErr
	}
	// Apply the permutation via a scratch copy.
	tmp := make([]byte, v.count*v.width)
	copy(tmp, db.M.Mem[v.base:v.base+v.count*v.width])
	for i, src := range idx {
		copy(db.M.Mem[v.base+uint64(i)*v.width:], tmp[uint64(src)*v.width:uint64(src+1)*v.width])
	}
	return nil
}

func (db *DB) badHandle(what string, id uint64) error {
	return fmt.Errorf("rt: %s: bad handle %d", what, id)
}
