package rt

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSharedDBMisusePanics is the regression test for the parallel-executor
// concurrency guard: once a DB is shared with the executor (or frozen),
// creating a handle from any other goroutine must panic loudly instead of
// silently corrupting the handle table.
func TestSharedDBMisusePanics(t *testing.T) {
	db := newDB(t)
	db.ShareForExec()
	defer db.EndShare()

	// The owner goroutine may keep creating handles.
	if id := db.newHandle("owner-ok"); id == 0 {
		t.Fatal("owner handle creation failed")
	}

	var msg string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				msg, _ = r.(string)
			}
		}()
		db.newHandle("off-goroutine")
	}()
	wg.Wait()
	if msg == "" {
		t.Fatal("handle creation on a shared DB from a non-owner goroutine did not panic")
	}
	if !strings.Contains(msg, "non-owner goroutine") || !strings.Contains(msg, "NewWorkerDB") {
		t.Fatalf("panic message %q does not explain the misuse or the fix", msg)
	}
}

func TestFrozenDBMisusePanics(t *testing.T) {
	db := newDB(t)
	db.Freeze()
	defer db.Unfreeze()

	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		db.newHandle("x")
	}()
	if !<-panicked {
		t.Fatal("handle creation on a frozen DB from a non-owner goroutine did not panic")
	}
}

// TestEndShareLiftsGuard checks the guard is scoped to the share window.
func TestEndShareLiftsGuard(t *testing.T) {
	db := newDB(t)
	db.ShareForExec()
	db.EndShare()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("handle creation after EndShare panicked: %v", r)
			}
			done <- nil
		}()
		db.newHandle("fine")
	}()
	<-done
}

// TestWorkerOwnGuard checks a worker DB owned by one goroutine rejects
// handle creation from another.
func TestWorkerOwnGuard(t *testing.T) {
	db := newDB(t)
	wdb := db.NewWorkerDB(db.M)

	ready := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wdb.Own()
		wdb.newHandle("worker-local") // owner: fine
		close(ready)
		<-release
		wdb.Release()
	}()
	<-ready
	func() {
		defer func() {
			if recover() == nil {
				t.Error("handle creation on an owned worker DB from another goroutine did not panic")
			}
		}()
		wdb.newHandle("intruder")
	}()
	close(release)
	wg.Wait()

	// After Release the main goroutine may use it again.
	wdb.newHandle("post-release")
}

// TestBatchSpecRoundTrip encodes a descriptor exercising every expression
// kind, value type, sink and aggregate and decodes it back unchanged.
func TestBatchSpecRoundTrip(t *testing.T) {
	col := func(ty BatchType, base, elem uint64) *BatchExpr {
		return &BatchExpr{Kind: BECol, Ty: ty, Base: base, Elem: elem}
	}
	spec := &BatchSpec{
		Sink:  BatchSinkAgg,
		Width: 64,
		Filters: []*BatchExpr{
			{Kind: BECmp, Ty: BTInt, Op: BCmpLE, L: col(BTInt, 0x1000, 4), R: &BatchExpr{Kind: BEConst, Ty: BTInt, I: -42}},
			{Kind: BEAnd,
				L: &BatchExpr{Kind: BEBetween, Ty: BTI128,
					L: col(BTI128, 0x2000, 16),
					R: &BatchExpr{Kind: BEConst, Ty: BTI128, D: I128{Lo: 5, Hi: 0}},
					H: &BatchExpr{Kind: BEConst, Ty: BTI128, D: I128{Lo: ^uint64(0), Hi: ^uint64(0)}}},
				R: &BatchExpr{Kind: BECmp, Ty: BTF64, Op: BCmpGT,
					L: col(BTF64, 0x3000, 8),
					R: &BatchExpr{Kind: BEConst, Ty: BTF64, F: 2.5}}},
			{Kind: BECmp, Ty: BTStr, Op: BCmpEQ,
				L: col(BTStr, 0x4000, 16),
				R: &BatchExpr{Kind: BEConst, Ty: BTStr, S: []byte("BUILDING")}},
		},
		Keys: []BatchKey{
			{Off: 0, Ty: BTStr, E: col(BTStr, 0x4000, 16)},
			{Off: 16, Ty: BTInt, E: col(BTInt, 0x1000, 4)},
		},
		Aggs: []BatchAgg{
			{Fn: BAggSum, Ty: BTI128, Off: 24,
				Arg: &BatchExpr{Kind: BEArith, Ty: BTI128, Op: BArithMul,
					L: col(BTI128, 0x2000, 16),
					R: &BatchExpr{Kind: BEArith, Ty: BTI128, Op: BArithSub,
						L: &BatchExpr{Kind: BEConst, Ty: BTI128, D: I128{Lo: 100}},
						R: col(BTI128, 0x5000, 16)}}},
			{Fn: BAggCount, Ty: BTInt, Off: 40},
			{Fn: BAggAvg, Ty: BTInt, Off: 48, COff: 56,
				Arg: &BatchExpr{Kind: BEArith, Ty: BTInt, Op: BArithAdd,
					L: col(BTInt, 0x1000, 8),
					R: &BatchExpr{Kind: BEConst, Ty: BTInt, I: 7}}},
			{Fn: BAggMin, Ty: BTF64, Off: 60, Arg: col(BTF64, 0x3000, 8)},
			{Fn: BAggMax, Ty: BTInt, Off: 62, Arg: col(BTInt, 0x1000, 2)},
		},
	}
	got, err := DecodeBatchSpec(spec.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("round trip mismatch:\nenc: %+v\ndec: %+v", spec, got)
	}

	build := &BatchSpec{
		Sink:  BatchSinkBuild,
		Width: 32,
		Keys:  []BatchKey{{Off: 0, Ty: BTInt, E: col(BTInt, 0x100, 4)}},
		Payload: []BatchCol{
			{Off: 8, Base: 0x200, Elem: 8},
			{Off: 16, Base: 0x300, Elem: 16},
		},
	}
	got, err = DecodeBatchSpec(build.Encode())
	if err != nil {
		t.Fatalf("decode build spec: %v", err)
	}
	if !reflect.DeepEqual(build, got) {
		t.Fatalf("build spec round trip mismatch:\nenc: %+v\ndec: %+v", build, got)
	}
}

func TestDecodeBatchSpecRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatchSpec([]byte("not a descriptor")); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	if _, err := DecodeBatchSpec(nil); err == nil {
		t.Fatal("decoding empty descriptor succeeded")
	}
	// Truncation anywhere must error, not panic.
	full := (&BatchSpec{
		Sink:    BatchSinkAgg,
		Width:   16,
		Filters: []*BatchExpr{{Kind: BECmp, Ty: BTInt, Op: BCmpEQ, L: &BatchExpr{Kind: BECol, Ty: BTInt, Base: 8, Elem: 4}, R: &BatchExpr{Kind: BEConst, Ty: BTInt, I: 3}}},
		Aggs:    []BatchAgg{{Fn: BAggCount, Ty: BTInt, Off: 0}},
	}).Encode()
	for n := 0; n < len(full); n++ {
		if _, err := DecodeBatchSpec(full[:n]); err == nil {
			t.Fatalf("decoding %d-byte prefix succeeded", n)
		}
	}
}
