package rt

import (
	"math/big"
	"testing"
	"testing/quick"

	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 16 << 20})
	return NewDB(m)
}

func toBig(a I128) *big.Int {
	v := new(big.Int).SetUint64(a.Hi)
	v.Lsh(v, 64)
	v.Or(v, new(big.Int).SetUint64(a.Lo))
	// interpret as signed 128-bit
	if a.IsNeg() {
		mod := new(big.Int).Lsh(big.NewInt(1), 128)
		v.Sub(v, mod)
	}
	return v
}

func fromBig(v *big.Int) I128 {
	mod := new(big.Int).Lsh(big.NewInt(1), 128)
	u := new(big.Int).Mod(v, mod)
	lo := new(big.Int).And(u, new(big.Int).SetUint64(^uint64(0)))
	hi := new(big.Int).Rsh(u, 64)
	return I128{Lo: lo.Uint64(), Hi: hi.Uint64()}
}

func TestI128AddSubMul(t *testing.T) {
	f := func(alo, ahi, blo, bhi uint64) bool {
		a := I128{Lo: alo, Hi: ahi}
		b := I128{Lo: blo, Hi: bhi}
		mod := new(big.Int).Lsh(big.NewInt(1), 128)
		sum := fromBig(new(big.Int).Mod(new(big.Int).Add(toBig(a), toBig(b)), mod))
		if a.Add(b) != sum {
			return false
		}
		diff := fromBig(new(big.Int).Sub(toBig(a), toBig(b)))
		if a.Sub(b) != diff {
			return false
		}
		prod := fromBig(new(big.Int).Mul(toBig(a), toBig(b)))
		return a.Mul(b) == prod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestI128Div(t *testing.T) {
	f := func(alo, ahi, blo, bhi uint64) bool {
		a := I128{Lo: alo, Hi: ahi}
		b := I128{Lo: blo, Hi: bhi}
		if b.Lo == 0 && b.Hi == 0 {
			return true
		}
		want := fromBig(new(big.Int).Quo(toBig(a), toBig(b)))
		return a.Div(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Small-divisor cases (common for decimals).
	cases := [][2]int64{{100, 7}, {-100, 7}, {100, -7}, {-100, -7}, {0, 5}, {1 << 62, 3}}
	for _, c := range cases {
		a, b := I128FromInt64(c[0]), I128FromInt64(c[1])
		want := fromBig(new(big.Int).Quo(toBig(a), toBig(b)))
		if got := a.Div(b); got != want {
			t.Errorf("%d/%d = %+v want %+v", c[0], c[1], got, want)
		}
	}
}

func TestI128MulCheck(t *testing.T) {
	max128 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))
	min128 := new(big.Int).Neg(new(big.Int).Lsh(big.NewInt(1), 127))
	f := func(alo, ahi, blo, bhi uint64) bool {
		a := I128{Lo: alo, Hi: ahi}
		b := I128{Lo: blo, Hi: bhi}
		prod := new(big.Int).Mul(toBig(a), toBig(b))
		wantOv := prod.Cmp(max128) > 0 || prod.Cmp(min128) < 0
		got, ov := a.MulCheck(b)
		if ov != wantOv {
			return false
		}
		if !ov && got != fromBig(prod) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also check small-value products, which quick rarely generates.
	for _, c := range [][2]int64{{3, 4}, {-3, 4}, {1 << 40, 1 << 40}, {0, 0}} {
		a, b := I128FromInt64(c[0]), I128FromInt64(c[1])
		got, ov := a.MulCheck(b)
		if ov {
			t.Errorf("%d*%d unexpectedly overflowed", c[0], c[1])
			continue
		}
		want := fromBig(new(big.Int).Mul(toBig(a), toBig(b)))
		if got != want {
			t.Errorf("%d*%d = %+v want %+v", c[0], c[1], got, want)
		}
	}
}

func TestI128Cmp(t *testing.T) {
	f := func(alo, ahi, blo, bhi uint64) bool {
		a := I128{Lo: alo, Hi: ahi}
		b := I128{Lo: blo, Hi: bhi}
		return a.Cmp(b) == toBig(a).Cmp(toBig(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestI128DecString(t *testing.T) {
	cases := []struct {
		v    I128
		want string
	}{
		{I128{}, "0"},
		{I128FromInt64(42), "42"},
		{I128FromInt64(-42), "-42"},
		{I128{Lo: 0, Hi: 1}, "18446744073709551616"},
	}
	for _, c := range cases {
		if got := c.v.DecString(); got != c.want {
			t.Errorf("DecString(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
	f := func(v int64) bool {
		return I128FromInt64(v).DecString() == big.NewInt(v).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	db := newDB(t)
	cases := []string{"", "a", "hello", "exactly12byt", "thirteen chars", "a much longer string that certainly exceeds the inline buffer"}
	for _, s := range cases {
		lo, hi := db.InternString(s)
		got, err := db.LoadString(lo, hi)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
	// Interning is stable.
	lo1, hi1 := db.InternString("stable string value")
	lo2, hi2 := db.InternString("stable string value")
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("interning not stable")
	}
}

func TestStringPrefixLayout(t *testing.T) {
	db := newDB(t)
	lo, _ := db.InternString("ABCDEFGHIJKLMNOP") // 16 chars, out of line
	// Byte 0-3: length 16; bytes 4-7: prefix "ABCD".
	if uint32(lo) != 16 {
		t.Errorf("length field = %d", uint32(lo))
	}
	if byte(lo>>32) != 'A' || byte(lo>>40) != 'B' || byte(lo>>48) != 'C' || byte(lo>>56) != 'D' {
		t.Errorf("prefix bytes wrong: %#x", lo)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "x%", false},
		{"hello", "%x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "a%b%c", true},
		{"ab", "a_b", false},
		{"mississippi", "%iss%ippi", true},
		{"mississippi", "%iss%issi", false},
	}
	for _, c := range cases {
		if got := likeMatch([]byte(c.s), []byte(c.p)); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestJoinHashTable(t *testing.T) {
	db := newDB(t)
	h := db.htCreate(16, false)
	ht := db.handle(h).(*hashTable)
	// Insert 100 entries with hash = key%8 to force chains.
	type kv struct{ k, v uint64 }
	var items []kv
	for i := uint64(0); i < 100; i++ {
		items = append(items, kv{k: i, v: i * 10})
	}
	for _, it := range items {
		p := db.htInsert(ht, it.k%8)
		put64(db.M.Mem[p:], it.k)
		put64(db.M.Mem[p+8:], it.v)
	}
	db.htFinalize(ht)
	// Probe each key: walk chain comparing stored key.
	for _, it := range items {
		found := false
		for p := db.htLookup(ht, it.k%8); p != 0; p = le64(db.M.Mem[p-entryHeader:]) {
			if le64(db.M.Mem[p-8:]) != it.k%8 {
				continue
			}
			if le64(db.M.Mem[p:]) == it.k {
				if le64(db.M.Mem[p+8:]) != it.v {
					t.Fatalf("key %d has value %d", it.k, le64(db.M.Mem[p+8:]))
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d not found", it.k)
		}
	}
	// Lookup of an empty bucket after finalize with distinct hashes.
	h2 := db.htCreate(8, false)
	ht2 := db.handle(h2).(*hashTable)
	db.htInsert(ht2, 12345)
	db.htFinalize(ht2)
	if db.htLookup(ht2, 12345) == 0 {
		t.Error("present hash not found")
	}
}

func TestAggHashTableGrows(t *testing.T) {
	db := newDB(t)
	h := db.htCreate(8, true)
	ht := db.handle(h).(*hashTable)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		hash := i * 0x9E3779B97F4A7C15
		// lookup-or-insert
		var p uint64
		for p = db.htLookup(ht, hash); p != 0; p = le64(db.M.Mem[p-entryHeader:]) {
			if le64(db.M.Mem[p-8:]) == hash {
				break
			}
		}
		if p == 0 {
			p = db.htInsert(ht, hash)
			put64(db.M.Mem[p:], 0)
		}
		put64(db.M.Mem[p:], le64(db.M.Mem[p:])+1)
	}
	if len(ht.entries) != n {
		t.Fatalf("%d entries, want %d", len(ht.entries), n)
	}
	// Re-probe: every entry counted once.
	for i := uint64(0); i < n; i++ {
		hash := i * 0x9E3779B97F4A7C15
		var p uint64
		for p = db.htLookup(ht, hash); p != 0; p = le64(db.M.Mem[p-entryHeader:]) {
			if le64(db.M.Mem[p-8:]) == hash {
				break
			}
		}
		if p == 0 {
			t.Fatalf("hash for %d missing", i)
		}
		if le64(db.M.Mem[p:]) != 1 {
			t.Fatalf("count for %d = %d", i, le64(db.M.Mem[p:]))
		}
	}
}

func TestVector(t *testing.T) {
	db := newDB(t)
	v := &vector{width: 8}
	for i := uint64(0); i < 500; i++ {
		slot := db.vecAppend(v)
		put64(db.M.Mem[slot:], i*3)
	}
	if v.count != 500 {
		t.Fatalf("count = %d", v.count)
	}
	for i := uint64(0); i < 500; i++ {
		if le64(db.M.Mem[v.base+i*8:]) != i*3 {
			t.Fatalf("slot %d corrupted after growth", i)
		}
	}
}

func TestSortI64(t *testing.T) {
	db := newDB(t)
	v := &vector{width: 16}
	vals := []int64{5, -2, 9, 0, 3, -7, 9}
	for i, x := range vals {
		slot := db.vecAppend(v)
		put64(db.M.Mem[slot:], uint64(x))
		put64(db.M.Mem[slot+8:], uint64(i)) // tag
	}
	if err := db.sortVec(v, 0, false, 0, false); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1 << 62)
	for i := uint64(0); i < v.count; i++ {
		x := int64(le64(db.M.Mem[v.base+i*16:]))
		if x < prev {
			t.Fatalf("not sorted at %d: %d < %d", i, x, prev)
		}
		prev = x
	}
	if err := db.sortVec(v, 0, false, 0, true); err != nil {
		t.Fatal(err)
	}
	if int64(le64(db.M.Mem[v.base:])) != 9 {
		t.Error("descending sort wrong")
	}
}

func TestOutBufferCanonical(t *testing.T) {
	o := &OutBuffer{}
	o.BeginRow()
	o.AddI64(2)
	o.AddStr("b")
	o.EndRow()
	o.BeginRow()
	o.AddI64(1)
	o.AddStr("a")
	o.EndRow()
	lines := o.Canonical()
	if len(lines) != 2 || lines[0] != "1|a" || lines[1] != "2|b" {
		t.Errorf("canonical = %v", lines)
	}
	o.Reset()
	if o.NumRows() != 0 {
		t.Error("reset failed")
	}
}

func TestCatalogStorage(t *testing.T) {
	db := newDB(t)
	cat := NewCatalog(db)
	tbl := cat.CreateTable("t", 3,
		ColSpec{"a", qir.I32}, ColSpec{"b", qir.I64},
		ColSpec{"c", qir.Str}, ColSpec{"d", qir.I128}, ColSpec{"e", qir.F64})
	for i := int64(0); i < 3; i++ {
		cat.SetInt(tbl.MustCol("a"), i, -i*100)
		cat.SetInt(tbl.MustCol("b"), i, i<<40)
		cat.SetStr(tbl.MustCol("c"), i, "row with a long string body here")
		cat.SetI128(tbl.MustCol("d"), i, I128FromInt64(i*7))
		cat.SetF64(tbl.MustCol("e"), i, float64(i)*1.5)
	}
	for i := int64(0); i < 3; i++ {
		if cat.GetInt(tbl.MustCol("a"), i) != -i*100 {
			t.Error("i32 column")
		}
		if cat.GetInt(tbl.MustCol("b"), i) != i<<40 {
			t.Error("i64 column")
		}
		s, err := cat.GetStr(tbl.MustCol("c"), i)
		if err != nil || s != "row with a long string body here" {
			t.Error("str column")
		}
		if cat.GetI128(tbl.MustCol("d"), i) != I128FromInt64(i*7) {
			t.Error("i128 column")
		}
		if cat.GetF64(tbl.MustCol("e"), i) != float64(i)*1.5 {
			t.Error("f64 column")
		}
	}
	if _, err := tbl.Col("nope"); err == nil {
		t.Error("expected missing-column error")
	}
	if _, err := cat.Table("nope"); err == nil {
		t.Error("expected missing-table error")
	}
}

func TestBindUnknownName(t *testing.T) {
	db := newDB(t)
	if err := db.Bind([]string{"no_such_fn"}); err == nil {
		t.Error("expected unknown runtime function error")
	}
	if err := db.Bind([]string{FnAlloc, FnStrEq, FnI128Div}); err != nil {
		t.Errorf("bind known names: %v", err)
	}
	if len(db.M.RT) != 3 {
		t.Error("RT table not installed")
	}
}

func TestCmpBytes(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a", "a", 0}, {"a", "b", -1}, {"b", "a", 1},
		{"ab", "a", 1}, {"a", "ab", -1}, {"", "", 0},
	}
	for _, c := range cases {
		if got := cmpBytes([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("cmp(%q,%q) = %d", c.a, c.b, got)
		}
	}
}

// TestAggChainAcyclicAfterGrowth is the regression test for the self-cycle
// bug: probing a missing hash after growth must terminate.
func TestAggChainAcyclicAfterGrowth(t *testing.T) {
	db := newDB(t)
	h := db.htCreate(8, true)
	ht := db.handle(h).(*hashTable)
	for i := uint64(0); i < 500; i++ {
		db.htInsert(ht, i*0x9E3779B97F4A7C15)
	}
	// Probe every bucket with a hash that is not present; chains must be
	// finite.
	for probe := uint64(0); probe < 1024; probe++ {
		steps := 0
		for p := db.htLookup(ht, probe); p != 0; p = le64(db.M.Mem[p-entryHeader:]) {
			steps++
			if steps > 10000 {
				t.Fatalf("cyclic chain for probe %d", probe)
			}
		}
	}
}
