package rt

import (
	"fmt"
	"sort"

	"qcc/internal/vm"
)

// Worker-DB support for the morsel-parallel executor (internal/codegen's
// RunParallel). The handle table and intern map of a DB are not
// goroutine-safe, so each executor worker gets its own DB bound to a worker
// vm.Machine that aliases the main machine's memory (vm.NewWorker). Table
// data is readable at the same baked addresses; everything a worker writes
// (pipeline state, hash-table entries, string bodies) lands in its private
// arena and therefore stays valid after the merge — the main DB's merged
// hash tables adopt worker payload addresses directly.

// NewWorkerDB creates a scratch runtime for one executor worker on machine
// m (a vm.NewWorker over this DB's machine). The worker inherits a snapshot
// of the current handle table (read-only access to tables built by earlier
// pipelines) and shares the read-only intern map; it gets its own output
// buffer and runs with insertion stamping enabled so partition-local sink
// state can be merged back in deterministic order.
func (db *DB) NewWorkerDB(m *vm.Machine) *DB {
	return &DB{
		M:        m,
		Out:      &OutBuffer{},
		handles:  append([]any(nil), db.handles...),
		strings:  db.strings, // read-only during execution
		target:   m.Target(),
		stamping: true,
	}
}

// ResetForQuery re-arms a persistent worker runtime for a new query: it
// re-snapshots the main DB's handle table, re-points the shared intern map
// (ResetToCheckpoint replaces the main DB's map object, so a worker created
// in an earlier query would otherwise hold a stale reference), and discards
// any leftover output rows and stamp state. The caller resets the worker
// machine's heap separately (the arena itself is persistent).
func (db *DB) ResetForQuery(main *DB) {
	db.checkOwner("ResetForQuery")
	db.handles = append(db.handles[:0], main.handles...)
	db.strings = main.strings
	db.Out = &OutBuffer{}
	db.stampNext = 0
}

// SyncHandles resets the worker's handle table to a snapshot of from's.
// The executor calls it before each parallel pipeline so workers see the
// merged sink objects of every earlier pipeline under the same handle ids
// the generated code baked into pipeline state.
func (db *DB) SyncHandles(from *DB) {
	db.checkOwner("SyncHandles")
	db.handles = append(db.handles[:0], from.handles...)
}

// Own transfers handle-table ownership to the calling goroutine and arms
// the misuse guard. Each executor worker goroutine calls it on its worker
// DB at start; any other goroutine mutating the handle table then panics.
func (db *DB) Own() {
	db.shared = true
	db.ownerGID = goid()
}

// Release lifts the Own guard (worker goroutine about to exit).
func (db *DB) Release() { db.shared = false }

// SetMorsel starts stamp numbering for one claimed morsel: stamps are
// (morsel index << 32) | sequence, so merging by ascending stamp reproduces
// the order a sequential execution would have inserted in.
func (db *DB) SetMorsel(idx int64) {
	db.stampNext = uint64(idx) << 32
}

// stampedRef is one worker-side sink element with its insertion stamp.
type stampedRef struct {
	stamp uint64
	db    *DB
	idx   int // index into the worker sink's entries/slots
}

// collectStamped gathers the stamped elements of handle id across workers,
// sorted by ascending stamp. get returns (count, stamps) for one worker.
func collectStamped(workers []*DB, get func(w *DB) (int, []uint64, error)) ([]stampedRef, error) {
	var refs []stampedRef
	for _, w := range workers {
		n, stamps, err := get(w)
		if err != nil {
			return nil, err
		}
		if n != len(stamps) {
			return nil, fmt.Errorf("rt: merge: %d entries but %d stamps (stamping disabled on a worker?)", n, len(stamps))
		}
		for i := 0; i < n; i++ {
			refs = append(refs, stampedRef{stamp: stamps[i], db: w, idx: i})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].stamp < refs[j].stamp })
	return refs, nil
}

// StampedHTEntries returns the payload addresses of hash table id across
// all workers, ordered by insertion stamp — the order a sequential
// execution would have inserted them in. The executor feeds them, in order,
// to the generated aggregation merge function.
func StampedHTEntries(workers []*DB, id uint64) ([]uint64, error) {
	refs, err := collectStamped(workers, func(w *DB) (int, []uint64, error) {
		ht, ok := w.handle(id).(*hashTable)
		if !ok {
			return 0, nil, w.badHandle("StampedHTEntries", id)
		}
		return len(ht.entries), ht.stamps, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(refs))
	for i, r := range refs {
		ht := r.db.handle(id).(*hashTable)
		out[i] = ht.entries[r.idx]
	}
	return out, nil
}

// MergeBuildHT merges the workers' partition-local join-build tables into
// the main DB's table id by adopting worker payload addresses in stamp
// order. Entries live in worker arenas of the shared machine memory, so no
// copying is needed; the pipeline's cleanup (ht_finalize) builds the bucket
// directory over the merged entry list exactly as it would sequentially.
func MergeBuildHT(main *DB, workers []*DB, id uint64) error {
	mht, ok := main.handle(id).(*hashTable)
	if !ok {
		return main.badHandle("MergeBuildHT", id)
	}
	refs, err := collectStamped(workers, func(w *DB) (int, []uint64, error) {
		ht, ok := w.handle(id).(*hashTable)
		if !ok {
			return 0, nil, w.badHandle("MergeBuildHT", id)
		}
		return len(ht.entries), ht.stamps, nil
	})
	if err != nil {
		return err
	}
	for _, r := range refs {
		ht := r.db.handle(id).(*hashTable)
		mht.entries = append(mht.entries, ht.entries[r.idx])
	}
	return nil
}

// MergeVector merges the workers' partition-local vectors into the main
// DB's vector id, copying slots in stamp order. Slot contents may embed
// addresses into worker arenas (string bodies); those stay valid because
// worker heaps persist until the query completes.
func MergeVector(main *DB, workers []*DB, id uint64) error {
	mv, ok := main.handle(id).(*vector)
	if !ok {
		return main.badHandle("MergeVector", id)
	}
	refs, err := collectStamped(workers, func(w *DB) (int, []uint64, error) {
		v, ok := w.handle(id).(*vector)
		if !ok {
			return 0, nil, w.badHandle("MergeVector", id)
		}
		return int(v.count), v.stamps, nil
	})
	if err != nil {
		return err
	}
	for _, r := range refs {
		v := r.db.handle(id).(*vector)
		slot := main.vecAppend(mv)
		src := v.base + uint64(r.idx)*v.width
		copy(main.M.Mem[slot:slot+mv.width], r.db.M.Mem[src:src+v.width])
	}
	return nil
}
