package qc

import (
	"reflect"
	"strings"
	"testing"
)

func openSmall(t *testing.T) *DB {
	t.Helper()
	db, err := Open(qcOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func qcOpts() []Option { return []Option{WithMemoryMB(256)} }

func loadProducts(t *testing.T, db *DB) {
	t.Helper()
	tb, err := db.CreateTable("products", 4,
		Column{Name: "id", Type: Int64},
		Column{Name: "name", Type: Text},
		Column{Name: "price", Type: Decimal},
		Column{Name: "qty", Type: Int32},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id    int64
		name  string
		price int64
		qty   int64
	}{
		{1, "apple", 100, 10}, {2, "banana", 50, 20},
		{3, "cherry", 300, 5}, {4, "durian", 900, 1},
	}
	for _, r := range rows {
		if err := tb.Append(r.id, r.name, DecFromInt(r.price), r.qty); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExecBasicSQL(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	res, err := db.Exec("SELECT name, price FROM products WHERE qty > 4 ORDER BY price DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"cherry", "300"}, {"apple", "100"}, {"banana", "50"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
	if res.Stats.CompileTime <= 0 || res.Stats.Functions == 0 {
		t.Errorf("missing stats: %+v", res.Stats)
	}
}

func TestExecAggregates(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	res, err := db.Exec("SELECT COUNT(*) AS n, SUM(price) AS total FROM products")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "4" || res.Rows[0][1] != "1350" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecGroupByHaving(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	res, err := db.Exec(`
		SELECT qty, COUNT(*) AS n FROM products
		GROUP BY qty HAVING n > 0 ORDER BY qty`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecEveryEngineAgrees(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	q := "SELECT name FROM products WHERE price BETWEEN 0.60 AND 9.50 ORDER BY name"
	var ref [][]string
	for _, e := range Engines() {
		res, err := db.ExecWith(e, q)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if ref == nil {
			ref = res.Rows
			continue
		}
		if !reflect.DeepEqual(res.Rows, ref) {
			t.Errorf("%s disagrees: %v vs %v", e, res.Rows, ref)
		}
	}
	// Decimal literals scale by 100: 0.60..9.50 → 60..950 cents.
	if len(ref) != 3 {
		t.Errorf("expected apple, cherry, durian; got %v", ref)
	}
}

func TestExecJoin(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	cat, err := db.CreateTable("categories", 4,
		Column{Name: "pid", Type: Int64},
		Column{Name: "cat", Type: Text},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []string{"fruit", "fruit", "fruit", "exotic"} {
		if err := cat.Append(int64(i+1), c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`
		SELECT cat, COUNT(*) AS n, SUM(price) AS total
		FROM products JOIN categories ON id = pid
		GROUP BY cat ORDER BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"exotic", "1", "900"}, {"fruit", "3", "450"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestSQLErrors(t *testing.T) {
	db := openSmall(t)
	loadProducts(t, db)
	for _, bad := range []string{
		"SELECT nosuch FROM products",
		"SELECT name FROM nosuchtable",
		"SELECT name FROM products WHERE name > 3",
		"SELECT FROM products",
		"SELECT name FROM products LIMIT banana",
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
	if _, err := db.ExecWith("no-such-engine", "SELECT 1 FROM products"); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("expected unknown engine error, got %v", err)
	}
}

func TestLoadWorkloads(t *testing.T) {
	db := openSmall(t)
	if err := db.LoadTPCH(0.01); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == "0" {
		t.Error("lineitem empty")
	}

	db2 := openSmall(t)
	if err := db2.LoadTPCDS(0.01); err != nil {
		t.Fatal(err)
	}
	res, err = db2.Exec("SELECT COUNT(*) FROM store_sales WHERE ss_quantity > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == "0" {
		t.Error("store_sales empty")
	}
}

func TestTableAppendErrors(t *testing.T) {
	db := openSmall(t)
	tb, err := db.CreateTable("t", 1, Column{Name: "a", Type: Int64})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append("not an int"); err == nil {
		t.Error("expected type error")
	}
	if err := tb.Append(int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(int64(2)); err == nil {
		t.Error("expected table-full error")
	}
}

func TestArchVA64(t *testing.T) {
	db, err := Open(WithArch(VA64), WithMemoryMB(256))
	if err != nil {
		t.Fatal(err)
	}
	loadProductsAny(t, db)
	// DirectEmit/adaptive are vx64-only; default must have fallen back.
	res, err := db.Exec("SELECT COUNT(*) FROM products")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "4" {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := db.ExecWith("directemit", "SELECT COUNT(*) FROM products"); err == nil {
		t.Error("directemit should fail on va64")
	}
}

func loadProductsAny(t *testing.T, db *DB) {
	t.Helper()
	loadProducts(t, db)
}
