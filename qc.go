// Package qc is the public interface to the query-compilation framework
// study: an embeddable analytical query engine whose queries are compiled
// to a virtual machine target by any of the back-ends analyzed in the paper
// — a bytecode interpreter, the single-pass DirectEmit compiler, a
// Cranelift-like framework, an LLVM-like framework (cheap and optimized
// modes, three instruction selectors), a GCC-style C pipeline, and the
// adaptive two-tier strategy.
//
//	db, _ := qc.Open()
//	db.LoadTPCH(0.05)
//	res, _ := db.Exec("SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag")
//	for _, row := range res.Rows { fmt.Println(row) }
package qc

import (
	"fmt"
	"time"

	"qcc/internal/backend"
	"qcc/internal/backend/adaptive"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/interp"
	"qcc/internal/backend/lbe"
	"qcc/internal/backend/pcc"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/sql"
	"qcc/internal/tpcds"
	"qcc/internal/tpch"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Arch selects the virtual target architecture.
type Arch = vt.Arch

// Architectures.
const (
	VX64 = vt.VX64
	VA64 = vt.VA64
)

// Option configures Open.
type Option func(*config)

type config struct {
	arch     Arch
	memMB    int
	engine   string
	noFuse   bool
	execJobs int
	batch    bool
	cacheMB  int
}

// WithArch selects the target architecture (default VX64).
func WithArch(a Arch) Option { return func(c *config) { c.arch = a } }

// WithMemoryMB sets the virtual machine memory size (default 512 MiB).
func WithMemoryMB(mb int) Option { return func(c *config) { c.memMB = mb } }

// WithEngine selects the default execution back-end by name; see Engines.
func WithEngine(name string) Option { return func(c *config) { c.engine = name } }

// WithFusion toggles the vm's superinstruction fusion for compiled queries
// (default on). Results are identical either way; off forces the plain
// decoded-switch dispatch loop, for dispatch-cost measurement.
func WithFusion(on bool) Option { return func(c *config) { c.noFuse = !on } }

// WithExecJobs sets the morsel-parallel executor's worker count (default 1,
// sequential). Results are identical at any worker count — the executor
// merges partitions in deterministic morsel order.
func WithExecJobs(n int) Option { return func(c *config) { c.execJobs = n } }

// WithBatch toggles batch-at-a-time operator kernels for eligible scan
// pipelines (default off). Results are identical either way.
func WithBatch(on bool) Option { return func(c *config) { c.batch = on } }

// WithCacheMB enables the content-addressed compiled-code cache with the
// given budget in MiB (default 0, disabled). Constant hoisting parameterizes
// compiled bodies, so queries that differ only in literal constants share one
// cache entry; per-query hit/miss counts appear in Stats.CacheHits/
// CacheMisses. Engines without a cacheable per-function pipeline (the
// interpreter, the adaptive tier driver) run uncached.
func WithCacheMB(mb int) Option { return func(c *config) { c.cacheMB = mb } }

// DB is an in-memory analytical database instance.
type DB struct {
	db       *rt.DB
	cat      *rt.Catalog
	arch     Arch
	engines  map[string]backend.Engine
	def      string
	noFuse   bool
	execJobs int
	batch    bool
	cache    *pcc.Cache
}

// Engines lists the available back-end names.
func Engines() []string {
	return []string{"interpreter", "directemit", "cranelift", "llvm-cheap", "llvm-opt", "gcc", "adaptive"}
}

// Open creates a database.
func Open(opts ...Option) (*DB, error) {
	cfg := config{arch: VX64, memMB: 512, engine: "adaptive"}
	for _, o := range opts {
		o(&cfg)
	}
	m := vm.New(vm.Config{Arch: cfg.arch, MemSize: cfg.memMB << 20})
	db := rt.NewDB(m)
	d := &DB{
		db:   db,
		cat:  rt.NewCatalog(db),
		arch: cfg.arch,
		engines: map[string]backend.Engine{
			"interpreter": interp.New(),
			"directemit":  direct.New(),
			"cranelift":   clift.New(),
			"llvm-cheap":  lbe.NewCheap(),
			"llvm-opt":    lbe.NewOpt(),
			"gcc":         cbe.New(),
			"adaptive":    adaptive.New(),
		},
		def:      cfg.engine,
		noFuse:   cfg.noFuse,
		execJobs: cfg.execJobs,
		batch:    cfg.batch,
	}
	if cfg.cacheMB > 0 {
		d.cache = pcc.NewCache(int64(cfg.cacheMB) << 20)
	}
	if cfg.arch != VX64 && (cfg.engine == "directemit" || cfg.engine == "adaptive") {
		d.def = "cranelift" // DirectEmit tiers are vx64-only
	}
	if _, ok := d.engines[d.def]; !ok {
		return nil, fmt.Errorf("qc: unknown engine %q", cfg.engine)
	}
	return d, nil
}

// LoadTPCH populates the TPC-H analog schema at the given scale factor.
func (d *DB) LoadTPCH(sf float64) error { return tpch.Load(d.cat, sf) }

// LoadTPCDS populates the TPC-DS analog schema at the given scale factor.
func (d *DB) LoadTPCDS(sf float64) error { return tpcds.Load(d.cat, sf) }

// ColumnType is a column type for CreateTable.
type ColumnType = qir.Type

// Column types.
const (
	Int32   = qir.I32
	Int64   = qir.I64
	Decimal = qir.I128
	Float   = qir.F64
	Text    = qir.Str
)

// Column declares one column for CreateTable.
type Column struct {
	Name string
	Type ColumnType
}

// Table provides typed row insertion for a created table.
type Table struct {
	db  *DB
	tbl *rt.Table
	row int64
}

// CreateTable allocates a table with a fixed row capacity.
func (d *DB) CreateTable(name string, rows int64, cols ...Column) (*Table, error) {
	specs := make([]rt.ColSpec, len(cols))
	for i, c := range cols {
		specs[i] = rt.ColSpec{Name: c.Name, Type: c.Type}
	}
	t := d.cat.CreateTable(name, rows, specs...)
	return &Table{db: d, tbl: t}, nil
}

// Append adds one row; values must match the column declaration order and
// types (int64, float64, string, or qc.Dec for decimals).
func (t *Table) Append(values ...any) error {
	if t.row >= t.tbl.Rows {
		return fmt.Errorf("qc: table %s is full (%d rows)", t.tbl.Name, t.tbl.Rows)
	}
	if len(values) != len(t.tbl.Cols) {
		return fmt.Errorf("qc: %d values for %d columns", len(values), len(t.tbl.Cols))
	}
	for i, v := range values {
		col := &t.tbl.Cols[i]
		switch col.Type {
		case qir.I8, qir.I16, qir.I32, qir.I64:
			iv, ok := toInt64(v)
			if !ok {
				return fmt.Errorf("qc: column %s expects an integer", col.Name)
			}
			t.db.cat.SetInt(col, t.row, iv)
		case qir.I128:
			switch x := v.(type) {
			case Dec:
				t.db.cat.SetI128(col, t.row, rt.I128(x))
			default:
				iv, ok := toInt64(v)
				if !ok {
					return fmt.Errorf("qc: column %s expects a decimal", col.Name)
				}
				t.db.cat.SetI128(col, t.row, rt.I128FromInt64(iv))
			}
		case qir.F64:
			fv, ok := v.(float64)
			if !ok {
				return fmt.Errorf("qc: column %s expects a float64", col.Name)
			}
			t.db.cat.SetF64(col, t.row, fv)
		case qir.Str:
			sv, ok := v.(string)
			if !ok {
				return fmt.Errorf("qc: column %s expects a string", col.Name)
			}
			t.db.cat.SetStr(col, t.row, sv)
		default:
			return fmt.Errorf("qc: unsupported column type %s", col.Type)
		}
	}
	t.row++
	return nil
}

func toInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	}
	return 0, false
}

// Dec is a fixed-point decimal value (scale managed by the caller).
type Dec rt.I128

// DecFromInt builds a decimal from an integer.
func DecFromInt(v int64) Dec { return Dec(rt.I128FromInt64(v)) }

// Stats summarizes one query's compilation and execution.
type Stats struct {
	Engine      string
	CompileTime time.Duration
	ExecTime    time.Duration
	Functions   int
	CodeBytes   int
	// CacheHits and CacheMisses count this query's compiled-unit cache
	// lookups (always zero unless Open got WithCacheMB).
	CacheHits   int64
	CacheMisses int64
	// Phases is the compile-time breakdown (phase name to duration).
	Phases map[string]time.Duration
}

// Result is a completed query.
type Result struct {
	// Columns are output column names (best-effort).
	Columns []string
	// Rows are stringified result rows in output order.
	Rows [][]string
	// Stats describes the compilation and execution.
	Stats Stats
}

// Exec parses, compiles (with the default engine) and runs a SQL query.
func (d *DB) Exec(query string) (*Result, error) {
	return d.ExecWith(d.def, query)
}

// ExecWith runs a query with a specific back-end.
func (d *DB) ExecWith(engine, query string) (*Result, error) {
	eng, ok := d.engines[engine]
	if !ok {
		return nil, fmt.Errorf("qc: unknown engine %q (have %v)", engine, Engines())
	}
	node, err := sql.Parse(query, d.cat)
	if err != nil {
		return nil, err
	}
	return d.run(eng, "q", node)
}

// ExecPlan compiles and runs a hand-built plan (advanced use; see package
// plan via the workload generators).
func (d *DB) ExecPlan(engine string, name string, node plan.Node) (*Result, error) {
	eng, ok := d.engines[engine]
	if !ok {
		return nil, fmt.Errorf("qc: unknown engine %q", engine)
	}
	return d.run(eng, name, node)
}

func (d *DB) run(eng backend.Engine, name string, node plan.Node) (*Result, error) {
	batchExec := d.execJobs > 1 || d.batch
	var c *codegen.Compiled
	var err error
	if batchExec {
		c, err = codegen.CompileOpts(name, node, d.cat,
			codegen.Options{Elim: true, Hoist: true, Batch: d.batch, Parallel: d.execJobs > 1})
	} else {
		c, err = codegen.Compile(name, node, d.cat)
	}
	if err != nil {
		return nil, err
	}
	if d.cache != nil {
		// The wrapper consults the shared cache per function; the variant
		// tag keys entries by check-elimination pass version so a pass
		// change never revives stale code.
		eng = pcc.Wrap(eng, pcc.Config{Jobs: 1, Cache: d.cache, VariantTag: codegen.CheckElimVersion})
	}
	ex, stats, err := eng.Compile(c.Module, &backend.Env{
		DB: d.db, Arch: d.arch,
		Options: backend.Options{NoFuse: d.noFuse},
	})
	if err != nil {
		return nil, err
	}
	d.db.ResetQueryState()
	execute := func() error { return codegen.Run(d.db, d.cat, c, ex.Call) }
	if batchExec {
		var mod *vm.Module
		if mh, ok := ex.(interface{ Module() *vm.Module }); ok {
			mod = mh.Module()
		}
		execute = func() error {
			return codegen.RunParallel(d.db, d.cat, c, ex.Call,
				codegen.ExecOptions{Jobs: d.execJobs, Module: mod})
		}
	}
	start := time.Now()
	if err := execute(); err != nil {
		return nil, err
	}
	execTime := time.Since(start)

	res := &Result{Stats: Stats{
		Engine:      eng.Name(),
		CompileTime: stats.Total,
		ExecTime:    execTime,
		Functions:   stats.Funcs,
		CodeBytes:   stats.CodeBytes,
		CacheHits:   stats.Counters["cache_hits"],
		CacheMisses: stats.Counters["cache_misses"],
		Phases:      map[string]time.Duration{},
	}}
	for _, p := range stats.Phases {
		res.Stats.Phases[p.Name] = p.Dur
	}
	for _, ci := range node.Schema() {
		res.Columns = append(res.Columns, ci.Name)
	}
	for _, row := range d.db.Out.Rows {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.String()
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
