// Quickstart: create a table, load rows, and run SQL with the default
// adaptive engine.
package main

import (
	"fmt"
	"log"

	"qcc"
)

func main() {
	db, err := qc.Open()
	if err != nil {
		log.Fatal(err)
	}

	// A small product table.
	t, err := db.CreateTable("products", 6,
		qc.Column{Name: "id", Type: qc.Int64},
		qc.Column{Name: "name", Type: qc.Text},
		qc.Column{Name: "price", Type: qc.Decimal}, // cents
		qc.Column{Name: "stock", Type: qc.Int32},
	)
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		id    int64
		name  string
		price int64
		stock int64
	}{
		{1, "widget", 199, 50},
		{2, "gadget", 1299, 12},
		{3, "gizmo", 549, 0},
		{4, "doohickey", 75, 230},
		{5, "thingamajig", 9999, 3},
		{6, "whatsit", 425, 17},
	}
	for _, r := range rows {
		if err := t.Append(r.id, r.name, qc.DecFromInt(r.price), r.stock); err != nil {
			log.Fatal(err)
		}
	}

	res, err := db.Exec(`
		SELECT name, price, stock
		FROM products
		WHERE stock > 0 AND price < 20.00
		ORDER BY price DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-stock products under $20, most expensive first:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %6s cents  (stock %s)\n", row[0], row[1], row[2])
	}
	fmt.Printf("\ncompiled %d functions with %s in %v, executed in %v\n",
		res.Stats.Functions, res.Stats.Engine, res.Stats.CompileTime, res.Stats.ExecTime)
}
