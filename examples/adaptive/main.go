// Adaptive: demonstrate the two-tier execution strategy — functions start
// in the fast DirectEmit tier and hot, large functions get promoted to the
// LLVM-optimized tier, trading extra compile time for faster morsels.
package main

import (
	"fmt"
	"log"

	"qcc"
)

func main() {
	db, err := qc.Open(qc.WithEngine("adaptive"), qc.WithMemoryMB(768))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTPCDS(0.5); err != nil {
		log.Fatal(err)
	}

	// A join-heavy aggregation: the pipeline main functions are called
	// once per morsel, so they cross the promotion threshold on larger
	// inputs.
	query := `
		SELECT i_category, COUNT(*) AS sales, SUM(ss_ext_sales_price) AS revenue
		FROM item JOIN store_sales ON ss_item_sk = i_item_sk
		WHERE ss_quantity > 5
		GROUP BY i_category
		ORDER BY i_category`

	res, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("category sales report:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %8s sales  %14s revenue\n", row[0], row[1], row[2])
	}
	fmt.Printf("\nengine: %s\n", res.Stats.Engine)
	fmt.Printf("compile (fast tier + any promotions): %v\n", res.Stats.CompileTime)
	fmt.Printf("execute: %v\n", res.Stats.ExecTime)
	if _, promoted := res.Stats.Phases["IRBuild"]; promoted {
		fmt.Println("the optimizing tier was engaged during execution (LLVM phases present)")
	} else {
		fmt.Println("the workload stayed in the DirectEmit tier")
	}
}
