// Backends: run the same analytical query with every compilation back-end
// and compare compile time, execution time, and results — a miniature of
// the paper's Table III.
package main

import (
	"fmt"
	"log"

	"qcc"
)

func main() {
	db, err := qc.Open(qc.WithMemoryMB(512))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTPCH(0.05); err != nil {
		log.Fatal(err)
	}

	query := `
		SELECT l_returnflag, l_linestatus,
		       SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice) AS sum_price,
		       COUNT(*) AS cnt
		FROM lineitem
		WHERE l_shipdate <= 10400
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`

	var reference [][]string
	fmt.Printf("%-14s %12s %12s %8s\n", "engine", "compile", "execute", "rows")
	for _, engine := range qc.Engines() {
		if engine == "adaptive" {
			continue // tiered; shown in the adaptive example
		}
		res, err := db.ExecWith(engine, query)
		if err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
		fmt.Printf("%-14s %12v %12v %8d\n", engine,
			res.Stats.CompileTime.Round(10_000), res.Stats.ExecTime.Round(10_000), len(res.Rows))
		if reference == nil {
			reference = res.Rows
		} else if fmt.Sprint(res.Rows) != fmt.Sprint(reference) {
			log.Fatalf("%s disagrees with the reference results!", engine)
		}
	}

	fmt.Println("\nall engines produced identical results:")
	for _, row := range reference {
		fmt.Println(" ", row)
	}
}
