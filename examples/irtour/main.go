// IRtour: build a QIR function by hand, print it, compile it with several
// back-ends, disassemble the machine code, and call it — the low-level API
// the query compiler sits on.
package main

import (
	"fmt"
	"log"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func main() {
	// sumsq(n) = sum of i*i for i in [0, n), with overflow-checked adds.
	mod := qir.NewModule("irtour")
	b := qir.NewFunc(mod, "sumsq", qir.I64, qir.I64)
	n := b.Param(0)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	zero := b.ConstInt(qir.I64, 0)
	one := b.ConstInt(qir.I64, 1)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(qir.I64, 0, zero)
	acc := b.Phi(qir.I64, 0, zero)
	cond := b.ICmp(qir.CmpSLT, i, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	sq := b.Bin(qir.OpSMulTrap, i, i)
	acc2 := b.Bin(qir.OpSAddTrap, acc, sq)
	i2 := b.Bin(qir.OpAdd, i, one)
	b.AddPhiArg(i, body, i2)
	b.AddPhiArg(acc, body, acc2)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(acc)

	if err := mod.VerifyModule(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("QIR:")
	fmt.Println(b.Func().String())

	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 16 << 20})
	db := rt.NewDB(m)
	env := &backend.Env{DB: db, Arch: vt.VX64}

	for _, eng := range []backend.Engine{direct.New(), clift.New(), lbe.NewOpt()} {
		ex, stats, err := eng.Compile(mod, env)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ex.Call(0, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s sumsq(1000) = %-12d  %4d bytes of code, compiled in %v\n",
			eng.Name(), int64(res[0]), stats.CodeBytes, stats.Total)
	}

	// Disassemble the DirectEmit output.
	ex, _, err := direct.New().Compile(mod, env)
	if err != nil {
		log.Fatal(err)
	}
	if d, ok := ex.(interface{ Disasm() string }); ok {
		fmt.Println("\nDirectEmit machine code (first 24 instructions):")
		lines := strings.SplitN(d.Disasm(), "\n", 25)
		for _, l := range lines[:min(24, len(lines))] {
			fmt.Println(" ", l)
		}
	}
}
